package stats

import (
	"sort"
	"time"
)

// Samples is a sample set sorted once at construction and sealed: every
// derived statistic (quantiles, box summary, ECDF, KS, level clustering)
// reuses the same sorted buffer instead of re-sorting a fresh copy per
// call, which is what makes per-cell study statistics allocation-flat.
//
// Contract: after construction the backing buffer belongs to the Samples
// value. Callers of SamplesInPlace must not mutate the slice they passed
// in, and callers of Values must treat the returned slice as read-only.
type Samples struct {
	sorted []float64
}

// NewSamples copies and sorts the input. The caller keeps ownership of
// the argument slice.
func NewSamples(samples []float64) *Samples {
	return &Samples{sorted: sortedCopy(samples)}
}

// SamplesInPlace sorts the argument slice in place and seals it as a
// Samples, avoiding the copy when the caller hands over ownership —
// typically a per-cell buffer preallocated from the round count.
func SamplesInPlace(samples []float64) *Samples {
	sort.Float64s(samples)
	return &Samples{sorted: samples}
}

// SamplesFromDurations converts durations to milliseconds into dst
// (append-style; pass dst[:0] to reuse a buffer) and seals the result.
func SamplesFromDurations(dst []float64, ds []time.Duration) *Samples {
	return SamplesInPlace(DurationsToMsInto(dst, ds))
}

// N returns the sample count.
func (s *Samples) N() int { return len(s.sorted) }

// Values exposes the sorted samples. The slice is shared with the
// Samples and must not be mutated.
func (s *Samples) Values() []float64 { return s.sorted }

// Quantile returns the q-quantile (R type-7). It panics on an empty set
// or q outside [0,1].
func (s *Samples) Quantile(q float64) float64 {
	checkQuantile(len(s.sorted), q)
	return quantileSorted(s.sorted, q)
}

// Median is Quantile(0.5).
func (s *Samples) Median() float64 { return s.Quantile(0.5) }

// Mean returns the arithmetic mean. It panics on an empty set.
func (s *Samples) Mean() float64 { return Mean(s.sorted) }

// StdDev returns the sample (n-1) standard deviation; 0 for n < 2.
func (s *Samples) StdDev() float64 { return StdDev(s.sorted) }

// MeanCI95 returns the mean and its two-sided 95% Student-t half-width.
func (s *Samples) MeanCI95() (mean, half float64) { return MeanCI95(s.sorted) }

// Box computes the five-number summary without re-sorting.
func (s *Samples) Box() Box { return boxSorted(s.sorted) }

// CDF returns the ECDF sharing this Samples' sorted buffer.
func (s *Samples) CDF() *CDF {
	if len(s.sorted) == 0 {
		panic("stats: CDF of empty sample set")
	}
	return &CDF{sorted: s.sorted}
}

// Levels clusters the samples into discrete levels (see package Levels).
func (s *Samples) Levels(tol float64) (centers []float64, counts []int) {
	return levelsSorted(s.sorted, tol)
}

// Bimodal reports whether the samples split into two dominant levels at
// least gap apart, each holding at least minFrac of the mass.
func (s *Samples) Bimodal(tol, gap, minFrac float64) bool {
	return bimodalLevels(s.sorted, tol, gap, minFrac)
}

// KS computes the two-sample Kolmogorov–Smirnov statistic against t.
func (s *Samples) KS(t *Samples) float64 {
	if len(s.sorted) == 0 || len(t.sorted) == 0 {
		panic("stats: KSStatistic of empty sample set")
	}
	return ksSorted(s.sorted, t.sorted)
}
