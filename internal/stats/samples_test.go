package stats

import (
	"math"
	"testing"
	"time"
)

func TestSamplesMatchesPackageFunctions(t *testing.T) {
	vals := []float64{9, 1, 4, 7, 2, 8, 3, 6, 5, 10}
	s := NewSamples(vals)
	if got, want := s.Median(), Median(vals); got != want {
		t.Errorf("Median = %v, want %v", got, want)
	}
	if got, want := s.Quantile(0.9), Quantile(vals, 0.9); got != want {
		t.Errorf("Quantile(0.9) = %v, want %v", got, want)
	}
	if got, want := s.Mean(), Mean(vals); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := s.StdDev(), StdDev(vals); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if got, want := s.Box(), NewBox(vals); got.Median != want.Median || got.Q1 != want.Q1 || got.Q3 != want.Q3 {
		t.Errorf("Box = %+v, want %+v", got, want)
	}
}

func TestNewSamplesDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	NewSamples(vals)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("NewSamples mutated its input: %v", vals)
	}
}

func TestSamplesInPlaceTakesOwnership(t *testing.T) {
	vals := []float64{3, 1, 2}
	s := SamplesInPlace(vals)
	if v := s.Values(); v[0] != 1 || v[2] != 3 {
		t.Fatalf("SamplesInPlace not sorted: %v", v)
	}
}

func TestSamplesFromDurationsAppends(t *testing.T) {
	dst := make([]float64, 0, 4)
	s := SamplesFromDurations(dst, []time.Duration{2 * time.Millisecond, time.Millisecond})
	if s.N() != 2 || s.Values()[0] != 1 || s.Values()[1] != 2 {
		t.Fatalf("SamplesFromDurations = %v", s.Values())
	}
}

// TestSamplesDerivedStatsZeroAlloc is the stats-layer allocation
// regression guard: once a Samples is sealed, every scalar statistic must
// run without allocating — this is what lets the experiment layer derive
// Box, quantiles and the rest from one cached sorted view.
func TestSamplesDerivedStatsZeroAlloc(t *testing.T) {
	vals := make([]float64, 101)
	for i := range vals {
		vals[i] = float64((i * 37) % 101)
	}
	s := NewSamples(vals)
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += s.Median() + s.Mean() + s.StdDev() + s.Quantile(0.9)
		m, h := s.MeanCI95()
		sink += m + h
		sink += s.Box().Median
	})
	if allocs != 0 {
		t.Fatalf("sealed Samples statistics allocated %.2f/op, want 0", allocs)
	}
	_ = sink
}

// TestDurationsToMsIntoReusesBuffer guards the destination-buffer export
// variants: converting into a pre-sized buffer must not allocate.
func TestDurationsToMsIntoReusesBuffer(t *testing.T) {
	ds := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	buf := make([]float64, 0, len(ds))
	allocs := testing.AllocsPerRun(100, func() {
		buf = DurationsToMsInto(buf[:0], ds)
	})
	if allocs != 0 {
		t.Fatalf("DurationsToMsInto allocated %.2f/op, want 0", allocs)
	}
	if len(buf) != 2 || buf[0] != 1 || buf[1] != 2 {
		t.Fatalf("DurationsToMsInto = %v", buf)
	}
}
