// Package stats implements the descriptive statistics the paper reports:
// box-and-whisker summaries with 1.5·IQR whiskers and outliers (Figure 3),
// empirical CDFs (Figure 4), means with Student-t 95% confidence intervals
// (Table 4), and discrete-level detection for bimodal overhead
// distributions caused by coarse timestamp granularity.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Ms converts a duration to floating-point milliseconds, the unit every
// figure in the paper uses.
func Ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// DurationsToMs converts a sample set.
func DurationsToMs(ds []time.Duration) []float64 {
	return DurationsToMsInto(make([]float64, 0, len(ds)), ds)
}

// DurationsToMsInto appends the converted samples to dst and returns the
// extended slice, letting per-repetition export paths reuse one buffer.
func DurationsToMsInto(dst []float64, ds []time.Duration) []float64 {
	for _, d := range ds {
		dst = append(dst, Ms(d))
	}
	return dst
}

// checkQuantile validates the inputs shared by the quantile entry points.
func checkQuantile(n int, q float64) {
	if n == 0 {
		panic("stats: Quantile of empty sample set")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
}

// quantileSorted computes the R type-7 quantile of an already-sorted set.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Quantile returns the q-quantile (0 <= q <= 1) of the samples using
// linear interpolation between order statistics (R type-7, the matplotlib
// default used for the paper's box plots). It panics on empty input.
// Callers computing several statistics over one set should build a
// Samples once instead: this function sorts a fresh copy per call.
func Quantile(samples []float64, q float64) float64 {
	checkQuantile(len(samples), q)
	return quantileSorted(sortedCopy(samples), q)
}

// Median is Quantile(0.5).
func Median(samples []float64) float64 { return Quantile(samples, 0.5) }

// Mean returns the arithmetic mean. It panics on empty input.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		panic("stats: Mean of empty sample set")
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// StdDev returns the sample (n-1) standard deviation; 0 for n < 2.
func StdDev(samples []float64) float64 {
	n := len(samples)
	if n < 2 {
		return 0
	}
	m := Mean(samples)
	var ss float64
	for _, v := range samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Box is a five-number summary with 1.5·IQR whiskers, matching the paper's
// box-and-whisker convention: whiskers are the extreme samples within
// [Q1 − 1.5·IQR, Q3 + 1.5·IQR]; everything outside is an outlier.
type Box struct {
	N                    int
	Min, Max             float64
	Q1, Median, Q3       float64
	WhiskerLo, WhiskerHi float64
	Outliers             []float64
}

// NewBox computes the box summary. It panics on empty input.
func NewBox(samples []float64) Box {
	return boxSorted(sortedCopy(samples))
}

// boxSorted computes the summary over an already-sorted sample set.
func boxSorted(s []float64) Box {
	b := Box{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLo, b.WhiskerHi = b.Q3, b.Q1 // will be replaced below
	first := true
	for _, v := range s {
		if v < loFence || v > hiFence {
			b.Outliers = append(b.Outliers, v)
			continue
		}
		if first {
			b.WhiskerLo = v
			first = false
		}
		b.WhiskerHi = v
	}
	if first { // degenerate: everything is an outlier (cannot happen, but be safe)
		b.WhiskerLo, b.WhiskerHi = b.Min, b.Max
	}
	return b
}

// IQR returns the interquartile range.
func (b Box) IQR() float64 { return b.Q3 - b.Q1 }

// String renders the summary on one line (values in the sample unit).
func (b Box) String() string {
	return fmt.Sprintf("n=%d min=%.2f [%.2f|%.2f|%.2f] max=%.2f whiskers=[%.2f,%.2f] outliers=%d",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.WhiskerLo, b.WhiskerHi, len(b.Outliers))
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds the ECDF of the samples. It panics on empty input.
func NewCDF(samples []float64) *CDF {
	if len(samples) == 0 {
		panic("stats: CDF of empty sample set")
	}
	return &CDF{sorted: sortedCopy(samples)}
}

// NewCDFInto builds the ECDF using dst as backing storage (append-style;
// pass dst[:0] to reuse a buffer across repetitions). The buffer is
// sealed into the CDF: the caller must not mutate it afterwards.
func NewCDFInto(dst []float64, samples []float64) *CDF {
	if len(samples) == 0 {
		panic("stats: CDF of empty sample set")
	}
	dst = append(dst, samples...)
	sort.Float64s(dst)
	return &CDF{sorted: dst}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile of the ECDF (inverse of At).
func (c *CDF) Quantile(p float64) float64 {
	checkQuantile(len(c.sorted), p)
	return quantileSorted(c.sorted, p)
}

// Points returns the step-function vertices (x, P(X<=x)) for plotting.
func (c *CDF) Points() (xs, ps []float64) {
	n := len(c.sorted)
	for i, v := range c.sorted {
		if i+1 < n && c.sorted[i+1] == v {
			continue // collapse duplicates to the last occurrence
		}
		xs = append(xs, v)
		ps = append(ps, float64(i+1)/float64(n))
	}
	return xs, ps
}

// tTable holds two-sided 95% Student-t critical values by degrees of
// freedom. Entries beyond 30 fall back to coarser rows; >200 uses the
// normal approximation 1.96.
var tTable = map[int]float64{
	1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
	6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
	16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
	21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
	26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
	40: 2.021, 50: 2.009, 60: 2.000, 80: 1.990, 100: 1.984, 200: 1.972,
}

// tCritical95 returns the two-sided 95% t critical value for df degrees of
// freedom.
func tCritical95(df int) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if v, ok := tTable[df]; ok {
		return v
	}
	if df > 200 {
		return 1.96
	}
	// Walk down to the nearest smaller tabulated df (conservative).
	for d := df; d >= 1; d-- {
		if v, ok := tTable[d]; ok {
			return v
		}
	}
	return 1.96
}

// MeanCI95 returns the sample mean and the half-width of its two-sided
// 95% confidence interval (Student t), as Table 4 reports
// ("mean ± 95% confidence interval"). Half-width is 0 for n < 2.
func MeanCI95(samples []float64) (mean, half float64) {
	mean = Mean(samples)
	n := len(samples)
	if n < 2 {
		return mean, 0
	}
	half = tCritical95(n-1) * StdDev(samples) / math.Sqrt(float64(n))
	return mean, half
}

// Levels clusters samples into discrete levels: values within tol of a
// level's running mean join it. It returns the level centers sorted
// ascending with their member counts. The paper uses this structure to
// show the two discrete Δd levels (~16 ms apart) the quantized Java clock
// produces.
func Levels(samples []float64, tol float64) (centers []float64, counts []int) {
	if len(samples) == 0 {
		return nil, nil
	}
	return levelsSorted(sortedCopy(samples), tol)
}

// levelsSorted clusters an already-sorted sample set.
func levelsSorted(s []float64, tol float64) (centers []float64, counts []int) {
	if len(s) == 0 {
		return nil, nil
	}
	start := 0
	var sum float64
	flush := func(end int) {
		n := end - start
		centers = append(centers, sum/float64(n))
		counts = append(counts, n)
		start, sum = end, 0
	}
	for i, v := range s {
		if i > start && v-sum/float64(i-start) > tol {
			flush(i)
		}
		sum += v
	}
	flush(len(s))
	return centers, counts
}

// Bimodal reports whether the samples split into two dominant levels at
// least gap apart, each holding at least minFrac of the mass.
func Bimodal(samples []float64, tol, gap, minFrac float64) bool {
	if len(samples) == 0 {
		return false
	}
	return bimodalLevels(sortedCopy(samples), tol, gap, minFrac)
}

// bimodalLevels runs the Bimodal test over an already-sorted sample set.
func bimodalLevels(s []float64, tol, gap, minFrac float64) bool {
	centers, counts := levelsSorted(s, tol)
	n := len(s)
	for i := 0; i < len(centers); i++ {
		for j := i + 1; j < len(centers); j++ {
			if centers[j]-centers[i] >= gap &&
				float64(counts[i]) >= minFrac*float64(n) &&
				float64(counts[j]) >= minFrac*float64(n) {
				return true
			}
		}
	}
	return false
}

// KSStatistic computes the two-sample Kolmogorov–Smirnov statistic
// D = sup |F1(x) − F2(x)|: the largest vertical gap between the two
// empirical CDFs. It panics on empty inputs.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KSStatistic of empty sample set")
	}
	return ksSorted(sortedCopy(a), sortedCopy(b))
}

// ksSorted computes the KS statistic over two already-sorted sample sets.
func ksSorted(sa, sb []float64) float64 {
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		// Advance both CDFs past the next value, consuming ties together
		// so equal points never create a spurious gap.
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		for i < len(sa) && sa[i] == x {
			i++
		}
		for j < len(sb) && sb[j] == x {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if gap := math.Abs(fa - fb); gap > d {
			d = gap
		}
	}
	return d
}

// KSDifferent reports whether two samples differ at the alpha=0.05 level
// under the two-sample KS test (large-sample critical value
// c(α)·sqrt((n+m)/(n·m)) with c(0.05) = 1.358).
func KSDifferent(a, b []float64) bool {
	n, m := float64(len(a)), float64(len(b))
	crit := 1.358 * math.Sqrt((n+m)/(n*m))
	return KSStatistic(a, b) > crit
}

func sortedCopy(samples []float64) []float64 {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return s
}
