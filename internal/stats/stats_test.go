package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMs(t *testing.T) {
	if Ms(1500*time.Microsecond) != 1.5 {
		t.Fatalf("Ms = %v", Ms(1500*time.Microsecond))
	}
	if Ms(-2*time.Millisecond) != -2 {
		t.Fatalf("Ms negative = %v", Ms(-2*time.Millisecond))
	}
}

func TestDurationsToMs(t *testing.T) {
	got := DurationsToMs([]time.Duration{time.Millisecond, 250 * time.Microsecond})
	if len(got) != 2 || got[0] != 1 || got[1] != 0.25 {
		t.Fatalf("got %v", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(s, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileSingleton(t *testing.T) {
	if Quantile([]float64{7}, 0.99) != 7 {
		t.Fatal("singleton quantile")
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { Quantile(nil, 0.5) },
		"q<0":      func() { Quantile([]float64{1}, -0.1) },
		"q>1":      func() { Quantile([]float64{1}, 1.1) },
		"mean nil": func() { Mean(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMedianOddEven(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
}

func TestMeanStdDev(t *testing.T) {
	s := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(s) != 5 {
		t.Fatalf("mean = %v", Mean(s))
	}
	want := math.Sqrt(32.0 / 7.0)
	if !almost(StdDev(s), want, 1e-12) {
		t.Fatalf("stddev = %v, want %v", StdDev(s), want)
	}
	if StdDev([]float64{1}) != 0 {
		t.Fatal("stddev of singleton should be 0")
	}
}

func TestBoxBasic(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := NewBox(s)
	if b.N != 10 || b.Min != 1 || b.Max != 10 {
		t.Fatalf("box = %+v", b)
	}
	if b.Median != 5.5 {
		t.Fatalf("median = %v", b.Median)
	}
	if len(b.Outliers) != 0 {
		t.Fatalf("outliers = %v", b.Outliers)
	}
	if b.WhiskerLo != 1 || b.WhiskerHi != 10 {
		t.Fatalf("whiskers = %v %v", b.WhiskerLo, b.WhiskerHi)
	}
}

func TestBoxOutliers(t *testing.T) {
	s := []float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 100}
	b := NewBox(s)
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers = %v", b.Outliers)
	}
	if b.WhiskerHi != 19 {
		t.Fatalf("upper whisker = %v, want 19 (excludes outlier)", b.WhiskerHi)
	}
	if b.Max != 100 {
		t.Fatalf("max = %v, want 100", b.Max)
	}
}

func TestBoxConstantSamples(t *testing.T) {
	b := NewBox([]float64{5, 5, 5, 5})
	if b.IQR() != 0 || b.Median != 5 || len(b.Outliers) != 0 {
		t.Fatalf("box = %+v", b)
	}
	if b.String() == "" {
		t.Fatal("empty String")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {99, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); !almost(got, cse.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestCDFPointsCollapseDuplicates(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	xs, ps := c.Points()
	if len(xs) != 3 || xs[1] != 2 || !almost(ps[1], 0.75, 1e-12) {
		t.Fatalf("points = %v %v", xs, ps)
	}
	if !sort.Float64sAreSorted(xs) {
		t.Fatal("xs not sorted")
	}
	if ps[len(ps)-1] != 1 {
		t.Fatal("last CDF point must be 1")
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if c.Quantile(0.5) != 30 {
		t.Fatalf("Quantile(0.5) = %v", c.Quantile(0.5))
	}
}

func TestMeanCI95KnownCase(t *testing.T) {
	// n=5, sd=1, mean=10: half = 2.776 * 1/sqrt(5)
	s := []float64{9, 9.5, 10, 10.5, 11}
	mean, half := MeanCI95(s)
	if mean != 10 {
		t.Fatalf("mean = %v", mean)
	}
	sd := StdDev(s)
	want := 2.776 * sd / math.Sqrt(5)
	if !almost(half, want, 1e-9) {
		t.Fatalf("half = %v, want %v", half, want)
	}
}

func TestMeanCI95Singleton(t *testing.T) {
	mean, half := MeanCI95([]float64{3})
	if mean != 3 || half != 0 {
		t.Fatalf("singleton CI = %v ± %v", mean, half)
	}
}

func TestTCriticalFallbacks(t *testing.T) {
	// Untabulated df falls back to the nearest smaller row (conservative).
	if tCritical95(49) != tCritical95(40) {
		t.Fatalf("t(49) = %v, want fallback to t(40)=%v", tCritical95(49), tCritical95(40))
	}
	if tCritical95(1000) != 1.96 {
		t.Fatalf("t(1000) = %v", tCritical95(1000))
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Fatal("t(0) should be NaN")
	}
}

func TestLevelsTwoClusters(t *testing.T) {
	s := []float64{0.1, 0.2, 0.15, 15.6, 15.7, 15.65, 0.12}
	centers, counts := Levels(s, 1.0)
	if len(centers) != 2 {
		t.Fatalf("centers = %v", centers)
	}
	if counts[0] != 4 || counts[1] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	if !almost(centers[1]-centers[0], 15.5, 0.3) {
		t.Fatalf("gap = %v", centers[1]-centers[0])
	}
}

func TestLevelsEmpty(t *testing.T) {
	c, n := Levels(nil, 1)
	if c != nil || n != nil {
		t.Fatal("expected nil for empty input")
	}
}

func TestBimodal(t *testing.T) {
	bimodal := []float64{0, 0.1, 0.2, 0.1, 16, 15.9, 16.1, 15.8}
	if !Bimodal(bimodal, 1, 10, 0.2) {
		t.Fatal("clear bimodal set not detected")
	}
	unimodal := []float64{5, 5.1, 5.2, 4.9, 5.05}
	if Bimodal(unimodal, 1, 10, 0.2) {
		t.Fatal("unimodal set misdetected")
	}
	// Two levels but one is a tiny minority: not bimodal at minFrac=0.3.
	skewed := []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 16}
	if Bimodal(skewed, 1, 10, 0.3) {
		t.Fatal("skewed set misdetected")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		s := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(s, q)
			if v < prev {
				return false
			}
			prev = v
		}
		lo, hi := Quantile(s, 0), Quantile(s, 1)
		sorted := sortedCopy(s)
		return lo == sorted[0] && hi == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: box invariants Min<=WhiskerLo<=Q1<=Median<=Q3<=WhiskerHi<=Max
// and N = inliers + outliers.
func TestQuickBoxInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		s := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			return true
		}
		b := NewBox(s)
		// Note: whiskers are the extreme *inlying data points*; with
		// interpolated quartiles and extreme outliers they can land inside
		// [Q1, Q3], so only order them against Min/Max and each other.
		ok := b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.Min <= b.WhiskerLo && b.WhiskerLo <= b.WhiskerHi && b.WhiskerHi <= b.Max
		inliers := b.N - len(b.Outliers)
		return ok && b.N == len(s) && inliers >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the CDF is monotone and ends at 1.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		s := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s = append(s, v)
			}
		}
		if len(s) == 0 {
			return true
		}
		c := NewCDF(s)
		_, ps := c.Points()
		prev := 0.0
		for _, p := range ps {
			if p < prev || p > 1 {
				return false
			}
			prev = p
		}
		return ps[len(ps)-1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKSStatisticIdentical(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(s, s); d != 0 {
		t.Fatalf("KS of identical samples = %v, want 0", d)
	}
}

func TestKSStatisticDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSStatistic(a, b); d != 1 {
		t.Fatalf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSDifferentDetectsShift(t *testing.T) {
	var a, b, c []float64
	for i := 0; i < 200; i++ {
		a = append(a, float64(i%37))
		b = append(b, float64(i%37)+20)   // shifted
		c = append(c, float64((i+13)%37)) // same distribution, reordered
	}
	if !KSDifferent(a, b) {
		t.Fatal("clear shift not detected")
	}
	if KSDifferent(a, c) {
		t.Fatal("identical distributions flagged as different")
	}
}

func TestKSPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KSStatistic(nil, []float64{1})
}

// Property: KS is symmetric and bounded in [0, 1].
func TestQuickKSSymmetricBounded(t *testing.T) {
	f := func(ra, rb []float64) bool {
		a := filterFinite(ra)
		b := filterFinite(rb)
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		d1 := KSStatistic(a, b)
		d2 := KSStatistic(b, a)
		return d1 == d2 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func filterFinite(raw []float64) []float64 {
	var out []float64
	for _, v := range raw {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out = append(out, v)
		}
	}
	return out
}
