package sweep

import (
	"context"
	"os"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/methods"
)

// benchOptions is a 4 × 2 × 2 (16-cell) matrix: big enough that the
// cold/warm ratio is meaningful, small enough for bench iterations.
func benchOptions(dir string) Options {
	return Options{
		Methods: []methods.Kind{methods.XHRGet, methods.DOM, methods.WebSocket, methods.JavaTCP},
		Profiles: []*browser.Profile{
			browser.Lookup(browser.Chrome, browser.Windows),
			browser.Lookup(browser.Firefox, browser.Ubuntu),
		},
		Faults:   []faults.Profile{faults.Clean, faults.Lossy1pct},
		Runs:     5,
		Gap:      time.Second,
		BaseSeed: 42,
		Dir:      dir,
	}
}

// BenchmarkSweepCold measures a full compute-and-store sweep into an empty
// cache; BenchmarkSweepWarm measures the same sweep replayed from disk.
// `make bench-json` records both, so benchdiff tracks the warm/cold ratio
// across PRs.
func BenchmarkSweepCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp(b.TempDir(), "cold")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := Run(context.Background(), benchOptions(dir)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepWarm(b *testing.B) {
	dir := b.TempDir()
	if _, err := Run(context.Background(), benchOptions(dir)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), benchOptions(dir)); err != nil {
			b.Fatal(err)
		}
	}
}
