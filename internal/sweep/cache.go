package sweep

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"github.com/browsermetric/browsermetric/internal/core"
	"github.com/browsermetric/browsermetric/internal/obs"
)

// Cache is the content-addressed cell store: one file per cell under
// <dir>/cells, named by the cell's key hash, holding the cell's samples
// in the self-checking bmcell format. It implements core.CellCache.
//
// Load and Store are safe for concurrent use by study workers: distinct
// cells touch distinct files, and identical cells write identical bytes
// (last rename wins harmlessly).
type Cache struct {
	dir     string
	salt    string
	logf    func(format string, args ...any)
	metrics *obs.Metrics

	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64
	stores  atomic.Int64
}

// CacheStats is a point-in-time snapshot of the cache's counters.
type CacheStats struct {
	// Hits counts Loads served from disk; Misses counts absent entries.
	Hits, Misses int64
	// Corrupt counts entries that existed but failed verification
	// (checksum, framing, or key mismatch) and were discarded — each is
	// also counted as a miss, since the caller recomputes.
	Corrupt int64
	// Stores counts cells persisted.
	Stores int64
}

// OpenCache opens (creating if needed) a cache rooted at dir, keyed with
// salt (DefaultSalt when empty).
func OpenCache(dir, salt string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: cache dir must not be empty")
	}
	if salt == "" {
		salt = DefaultSalt
	}
	if err := os.MkdirAll(filepath.Join(dir, "cells"), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir, salt: salt, logf: func(string, ...any) {}}, nil
}

// SetLog installs a printf-style logger for corruption and recompute
// notices (nil silences them, the default).
func (c *Cache) SetLog(fn func(format string, args ...any)) {
	if fn == nil {
		fn = func(string, ...any) {}
	}
	c.logf = fn
}

// SetMetrics exports the cache's counters through a wall-clock metrics
// registry as sweep_cache_* series, so sweep health is scrapeable like
// everything else. nil (the default) disables the export at zero cost.
// Call before the sweep starts; the Load/Store paths read the registry
// without synchronization.
func (c *Cache) SetMetrics(m *obs.Metrics) {
	c.metrics = m
	if !m.Enabled() {
		return
	}
	m.SetHelp("sweep_cache_hits_total", "Cells replayed from the content-addressed cache.")
	m.SetHelp("sweep_cache_misses_total", "Cache lookups that required recomputation (absent or corrupt entries).")
	m.SetHelp("sweep_cache_corrupt_total", "Cache entries that failed verification and were discarded (each also counts as a miss).")
	m.SetHelp("sweep_cache_stores_total", "Cells persisted to the cache.")
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Key returns the content-address key of a cell config under the cache's
// salt.
func (c *Cache) Key(cfg core.Config) Key { return KeyFromConfig(cfg, c.salt) }

// Stats snapshots the hit/miss/corruption counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Corrupt: c.corrupt.Load(),
		Stores:  c.stores.Load(),
	}
}

func (c *Cache) cellPath(hash string) string {
	return filepath.Join(c.dir, "cells", hash+".cell")
}

// Load implements core.CellCache: it returns the cached experiment for
// cfg, or ok=false on a miss. A corrupt entry (flipped byte, truncation,
// key mismatch) is detected by the file's checksum, logged, deleted, and
// reported as a miss so the scheduler recomputes — it can never surface
// as data.
func (c *Cache) Load(cfg core.Config) (*core.Experiment, bool) {
	key := c.Key(cfg)
	hash := key.Hash()
	data, err := os.ReadFile(c.cellPath(hash))
	if err != nil {
		c.misses.Add(1)
		c.metrics.Add("sweep_cache_misses_total", 1)
		return nil, false
	}
	storedKey, samples, derr := decodeCell(data)
	if derr == nil && storedKey != hash {
		derr = fmt.Errorf("sweep: cell file: stored key %s != expected %s", storedKey[:8], hash[:8])
	}
	if derr != nil {
		c.corrupt.Add(1)
		c.misses.Add(1)
		c.metrics.Add("sweep_cache_corrupt_total", 1)
		c.metrics.Add("sweep_cache_misses_total", 1)
		c.logf("sweep: corrupt cache entry for %s: %v; recomputing", key, derr)
		os.Remove(c.cellPath(hash))
		return nil, false
	}
	c.hits.Add(1)
	c.metrics.Add("sweep_cache_hits_total", 1)
	// Reconstruct the experiment exactly as RunContext would have left
	// it: the normalized config plus the stored samples. Every derived
	// statistic and export is a pure function of these, so the replay is
	// bit-identical to recomputation.
	cfg.Normalize()
	return &core.Experiment{Config: cfg, Samples: samples}, true
}

// Store implements core.CellCache: it persists a completed cell
// atomically (temp file + rename), so a killed sweep leaves either the
// complete entry or none.
func (c *Cache) Store(cfg core.Config, exp *core.Experiment) error {
	hash := c.Key(cfg).Hash()
	data := encodeCell(hash, exp.Samples)
	tmp, err := os.CreateTemp(filepath.Join(c.dir, "cells"), hash+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: store cell: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: store cell: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: store cell: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.cellPath(hash)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: store cell: %w", err)
	}
	c.stores.Add(1)
	c.metrics.Add("sweep_cache_stores_total", 1)
	return nil
}
