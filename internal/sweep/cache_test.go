package sweep

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/core"
	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

func cellConfig(seed int64) core.Config {
	return core.Config{
		Method:  methods.XHRGet,
		Profile: browser.Lookup(browser.Chrome, browser.Windows),
		Runs:    2,
		Gap:     time.Second,
		Testbed: testbed.Config{Seed: seed},
	}
}

// syncLog collects log lines; Cache may log from concurrent workers.
type syncLog struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *syncLog) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(&l.b, format+"\n", args...)
}

func (l *syncLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func TestCacheStoreLoadRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cellConfig(42)
	exp, err := core.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(cfg, exp); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load(cfg)
	if !ok {
		t.Fatal("Load after Store missed")
	}
	if !reflect.DeepEqual(got.Samples, exp.Samples) {
		t.Errorf("replayed samples differ from stored samples")
	}
	// The replayed config is the normalized one RunContext would have used.
	if got.Config.Runs != 2 || got.Config.Gap != time.Second {
		t.Errorf("replayed config not normalized: Runs=%d Gap=%v", got.Config.Runs, got.Config.Gap)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 0 || s.Corrupt != 0 || s.Stores != 1 {
		t.Errorf("stats = %+v, want 1 hit, 0 misses, 0 corrupt, 1 store", s)
	}
}

func TestCacheMissOnAbsentEntry(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(cellConfig(7)); ok {
		t.Fatal("Load on empty cache hit")
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Errorf("stats = %+v, want 1 miss", s)
	}
}

// TestCacheCorruptionDetected is the byte-flip robustness test: a single
// flipped bit anywhere in a cached cell file must be detected by the
// trailing checksum, logged, counted, and reported as a miss (so the
// scheduler recomputes), and the poisoned file must be removed.
func TestCacheCorruptionDetected(t *testing.T) {
	cfg := cellConfig(42)
	exp, err := core.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a byte at several structurally distinct offsets: inside a
	// sample line, inside the key line, and inside the checksum itself.
	for _, pick := range []struct {
		name string
		at   func(n int) int
	}{
		{"mid-file", func(n int) int { return n / 2 }},
		{"key-line", func(n int) int { return len(cellMagic) + 1 + 8 }},
		{"checksum", func(n int) int { return n - 2 }},
	} {
		t.Run(pick.name, func(t *testing.T) {
			c, err := OpenCache(t.TempDir(), "")
			if err != nil {
				t.Fatal(err)
			}
			lg := &syncLog{}
			c.SetLog(lg.logf)
			if err := c.Store(cfg, exp); err != nil {
				t.Fatal(err)
			}
			path := c.cellPath(c.Key(cfg).Hash())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			i := pick.at(len(data))
			data[i] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			if _, ok := c.Load(cfg); ok {
				t.Fatal("Load served a corrupt entry as a hit")
			}
			if s := c.Stats(); s.Corrupt != 1 || s.Misses != 1 {
				t.Errorf("stats = %+v, want corrupt=1 miss=1", s)
			}
			if log := lg.String(); log == "" {
				t.Errorf("corruption was not logged")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt entry was not removed (stat err = %v)", err)
			}

			// Recompute-and-restore yields a working entry again.
			if err := c.Store(cfg, exp); err != nil {
				t.Fatal(err)
			}
			got, ok := c.Load(cfg)
			if !ok || !reflect.DeepEqual(got.Samples, exp.Samples) {
				t.Fatal("cache did not recover after recompute + store")
			}
		})
	}
}

// TestCacheTruncationDetected: a torn write (file cut mid-entry) fails the
// checksum the same way a flip does.
func TestCacheTruncationDetected(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cellConfig(42)
	exp, err := core.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(cfg, exp); err != nil {
		t.Fatal(err)
	}
	path := c.cellPath(c.Key(cfg).Hash())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(cfg); ok {
		t.Fatal("Load served a truncated entry as a hit")
	}
	if s := c.Stats(); s.Corrupt != 1 {
		t.Errorf("stats = %+v, want corrupt=1", s)
	}
}

// TestCacheKeyMismatchRejected: a well-formed cell file sitting at the
// wrong address (e.g. a botched manual copy) is rejected — the stored key
// must match the address it was loaded from.
func TestCacheKeyMismatchRejected(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	cfgA, cfgB := cellConfig(1), cellConfig(2)
	exp, err := core.RunContext(context.Background(), cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(cfgA, exp); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.cellPath(c.Key(cfgA).Hash()))
	if err != nil {
		t.Fatal(err)
	}
	// Plant A's (internally consistent) file at B's address.
	if err := os.WriteFile(c.cellPath(c.Key(cfgB).Hash()), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(cfgB); ok {
		t.Fatal("Load served a mis-addressed entry")
	}
	if s := c.Stats(); s.Corrupt != 1 {
		t.Errorf("stats = %+v, want corrupt=1", s)
	}
}

func TestOpenCacheRequiresDir(t *testing.T) {
	if _, err := OpenCache("", ""); err == nil {
		t.Fatal("OpenCache(\"\") succeeded, want error")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cellConfig(42)
	exp, err := core.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := c.Store(cfg, exp); err != nil {
					t.Error(err)
					return
				}
				if got, ok := c.Load(cfg); ok && !reflect.DeepEqual(got.Samples, exp.Samples) {
					t.Error("concurrent Load returned wrong samples")
					return
				}
			}
		}()
	}
	wg.Wait()
	if _, err := os.Stat(filepath.Join(c.Dir(), "cells")); err != nil {
		t.Fatal(err)
	}
}

// TestCacheMetricsExported pins the sweep_cache_* observability export:
// hits, misses, corruption and stores all surface as registry counters
// with HELP text, and a nil registry costs nothing.
func TestCacheMetricsExported(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	c.SetMetrics(m)

	cfg := cellConfig(1)
	if _, ok := c.Load(cfg); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	exp, err := core.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(cfg, exp); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(cfg); !ok {
		t.Fatal("miss after store")
	}
	// Corrupt the entry: the next load counts corrupt + miss.
	path := c.cellPath(c.Key(cfg).Hash())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(cfg); ok {
		t.Fatal("corrupt entry served")
	}

	want := map[string]int64{
		"sweep_cache_hits_total":    1,
		"sweep_cache_misses_total":  2,
		"sweep_cache_corrupt_total": 1,
		"sweep_cache_stores_total":  1,
	}
	for name, v := range want {
		if got := m.Counter(name); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	if missing := m.FamiliesMissingHelp(); len(missing) != 0 {
		t.Fatalf("sweep cache families missing HELP text: %v", missing)
	}
	// The registry counters agree with the in-process Stats snapshot.
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Corrupt != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSweepRunExportsCacheMetrics wires Options.Metrics end to end: a
// cold run stores every cell, a warm rerun replays them, and both show
// up on the same registry.
func TestSweepRunExportsCacheMetrics(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewMetrics()
	opts := Options{
		Methods:  []methods.Kind{methods.XHRGet},
		Profiles: []*browser.Profile{browser.Lookup(browser.Chrome, browser.Windows)},
		Faults:   []faults.Profile{faults.Clean},
		Runs:     2,
		Gap:      time.Second,
		Dir:      dir,
		Metrics:  m,
	}
	if _, err := Run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("sweep_cache_stores_total"); got != 1 {
		t.Fatalf("cold stores = %d, want 1", got)
	}
	if got := m.Counter("sweep_cache_hits_total"); got != 0 {
		t.Fatalf("cold hits = %d, want 0", got)
	}
	if _, err := Run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if got := m.Counter("sweep_cache_hits_total"); got != 1 {
		t.Fatalf("warm hits = %d, want 1", got)
	}
	if got := m.Counter("sweep_cache_misses_total"); got != 1 {
		t.Fatalf("misses = %d, want 1 (cold lookup only)", got)
	}
}
