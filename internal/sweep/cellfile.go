package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"time"

	"github.com/browsermetric/browsermetric/internal/core"
)

// Cell file format v1 — a deterministic, self-checking text encoding of
// one cell's samples:
//
//	bmcell v1
//	key <64 hex>
//	n <sample count>
//	s <run> <round> <browser_ns> <wire_ns> <handshake 0|1>   (n lines)
//	sum <64 hex>                                             (SHA-256 of everything above)
//
// Overhead is not stored: it is rederived as BrowserRTT − WireRTT, the
// exact integer arithmetic RunContext performs, so the file cannot even
// express an inconsistent triple. The trailing checksum covers every
// preceding byte; a flipped bit or truncation anywhere fails decodeCell,
// which the cache treats as a miss (detect, log, recompute).

const cellMagic = "bmcell v1"

// encodeCell renders samples under their content-address key.
func encodeCell(key string, samples []core.Sample) []byte {
	var b bytes.Buffer
	b.WriteString(cellMagic)
	b.WriteByte('\n')
	b.WriteString("key ")
	b.WriteString(key)
	b.WriteByte('\n')
	b.WriteString("n ")
	b.WriteString(strconv.Itoa(len(samples)))
	b.WriteByte('\n')
	for _, s := range samples {
		h := byte('0')
		if s.Handshake {
			h = '1'
		}
		fmt.Fprintf(&b, "s %d %d %d %d %c\n", s.Run, s.Round, int64(s.BrowserRTT), int64(s.WireRTT), h)
	}
	sum := sha256.Sum256(b.Bytes())
	b.WriteString("sum ")
	b.WriteString(hex.EncodeToString(sum[:]))
	b.WriteByte('\n')
	return b.Bytes()
}

// decodeCell parses and verifies a cell file, returning the stored key
// and samples. Any framing violation, count mismatch, malformed field, or
// checksum failure is an error; the function never panics on arbitrary
// input (FuzzCellDecode enforces this).
func decodeCell(data []byte) (key string, samples []core.Sample, err error) {
	// Split off the trailing "sum <hex>\n" line and verify it first: the
	// checksum covers everything, so nothing else need be trusted before.
	trimmed := data
	if len(trimmed) == 0 || trimmed[len(trimmed)-1] != '\n' {
		return "", nil, fmt.Errorf("sweep: cell file: missing trailing newline")
	}
	trimmed = trimmed[:len(trimmed)-1]
	nl := bytes.LastIndexByte(trimmed, '\n')
	sumLine := trimmed[nl+1:] // nl == -1 leaves the whole (single) line
	body := data[:nl+1]
	if nl < 0 {
		return "", nil, fmt.Errorf("sweep: cell file: no body before checksum")
	}
	sumHex, ok := bytes.CutPrefix(sumLine, []byte("sum "))
	if !ok {
		return "", nil, fmt.Errorf("sweep: cell file: last line is not a checksum")
	}
	want, err := hex.DecodeString(string(sumHex))
	if err != nil || len(want) != sha256.Size {
		return "", nil, fmt.Errorf("sweep: cell file: malformed checksum")
	}
	got := sha256.Sum256(body)
	if !bytes.Equal(got[:], want) {
		return "", nil, fmt.Errorf("sweep: cell file: checksum mismatch (corrupt entry)")
	}

	lines := bytes.Split(bytes.TrimSuffix(body, []byte("\n")), []byte("\n"))
	if len(lines) < 3 || string(lines[0]) != cellMagic {
		return "", nil, fmt.Errorf("sweep: cell file: bad header")
	}
	keyHex, ok := bytes.CutPrefix(lines[1], []byte("key "))
	if !ok || len(keyHex) != 64 || !isLowerHex(keyHex) {
		return "", nil, fmt.Errorf("sweep: cell file: bad key line")
	}
	nStr, ok := bytes.CutPrefix(lines[2], []byte("n "))
	if !ok {
		return "", nil, fmt.Errorf("sweep: cell file: bad count line")
	}
	n, err := strconv.Atoi(string(nStr))
	if err != nil || n < 0 || n != len(lines)-3 {
		return "", nil, fmt.Errorf("sweep: cell file: sample count %q does not match %d lines", nStr, len(lines)-3)
	}

	samples = make([]core.Sample, 0, n)
	for _, ln := range lines[3:] {
		f := bytes.Split(ln, []byte(" "))
		if len(f) != 6 || string(f[0]) != "s" {
			return "", nil, fmt.Errorf("sweep: cell file: bad sample line %q", ln)
		}
		run, err1 := strconv.Atoi(string(f[1]))
		round, err2 := strconv.Atoi(string(f[2]))
		browserNs, err3 := strconv.ParseInt(string(f[3]), 10, 64)
		wireNs, err4 := strconv.ParseInt(string(f[4]), 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || run < 0 || round < 1 {
			return "", nil, fmt.Errorf("sweep: cell file: bad sample fields %q", ln)
		}
		var handshake bool
		switch string(f[5]) {
		case "0":
		case "1":
			handshake = true
		default:
			return "", nil, fmt.Errorf("sweep: cell file: bad handshake flag %q", ln)
		}
		samples = append(samples, core.Sample{
			Run:        run,
			Round:      round,
			BrowserRTT: durNs(browserNs),
			WireRTT:    durNs(wireNs),
			Overhead:   durNs(browserNs - wireNs),
			Handshake:  handshake,
		})
	}
	return string(keyHex), samples, nil
}

func durNs(ns int64) time.Duration { return time.Duration(ns) }

func isLowerHex(b []byte) bool {
	for _, c := range b {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
