package sweep

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/browsermetric/browsermetric/internal/core"
)

// TestCacheConcurrentWritersSameKey is the shard-tier contract: multiple
// processes (here goroutines, under -race) racing to Store the same cell
// key while readers Load it concurrently. Because identical cells encode
// identical bytes and writes are temp-then-rename, every Load must
// observe either a miss or the complete cell — never a torn or corrupt
// entry. The corrupt counter staying at zero is the proof.
func TestCacheConcurrentWritersSameKey(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cellConfig(42)
	exp, err := core.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	const writers, readers, iters = 2, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := c.Store(cfg, exp); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				got, ok := c.Load(cfg)
				if !ok {
					continue // a miss before the first rename lands is fine
				}
				if !reflect.DeepEqual(got.Samples, exp.Samples) {
					t.Error("concurrent Load observed wrong samples")
					return
				}
			}
		}()
	}
	wg.Wait()

	s := c.Stats()
	if s.Corrupt != 0 {
		t.Errorf("%d corrupt observations under concurrent same-key writers; rename must be atomic", s.Corrupt)
	}
	// The final state must be one complete, loadable cell.
	if got, ok := c.Load(cfg); !ok || !reflect.DeepEqual(got.Samples, exp.Samples) {
		t.Error("cell not intact after the race")
	}
}

// TestCacheTornFinalFileNeverServed injects the failure temp-then-rename
// exists to prevent: a cell file at the final path holding only a prefix
// of the real encoding (what a crashed direct writer would leave). The
// reader must detect it via the trailing checksum, count it corrupt,
// delete it, and report a miss — partial data can never surface as a
// cached cell.
func TestCacheTornFinalFileNeverServed(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cellConfig(7)
	exp, err := core.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(cfg, exp); err != nil {
		t.Fatal(err)
	}
	hash := c.Key(cfg).Hash()
	path := filepath.Join(c.Dir(), "cells", hash+".cell")
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every strict prefix is a possible torn write; probe a spread of
	// them, including cutting inside the trailing checksum line.
	for _, frac := range []int{1, 4, 2} {
		n := len(whole) - len(whole)/frac
		if n <= 0 {
			continue
		}
		if err := os.WriteFile(path, whole[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		before := c.Stats().Corrupt
		if _, ok := c.Load(cfg); ok {
			t.Fatalf("Load served a torn cell (%d of %d bytes)", n, len(whole))
		}
		if c.Stats().Corrupt != before+1 {
			t.Errorf("torn cell (%d bytes) not counted corrupt", n)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("torn cell (%d bytes) not deleted after detection", n)
		}
		// Restore for the next probe.
		if err := os.WriteFile(path, whole, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheLeftoverTempFilesHarmless: a SIGKILLed writer leaves
// <hash>.tmp* debris in the cells dir. It must be invisible to Load
// (misses, not corruption) and must not prevent a later Store+Load of
// the same cell.
func TestCacheLeftoverTempFilesHarmless(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cellConfig(11)
	hash := c.Key(cfg).Hash()
	debris := filepath.Join(c.Dir(), "cells", hash+".tmp123456")
	if err := os.WriteFile(debris, []byte("partial garbage from a dead writer"), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := c.Load(cfg); ok {
		t.Fatal("Load served a cell from temp debris")
	}
	if s := c.Stats(); s.Corrupt != 0 || s.Misses != 1 {
		t.Errorf("temp debris miscounted: %+v, want a clean miss", s)
	}

	exp, err := core.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(cfg, exp); err != nil {
		t.Fatalf("Store with temp debris present: %v", err)
	}
	if got, ok := c.Load(cfg); !ok || !reflect.DeepEqual(got.Samples, exp.Samples) {
		t.Fatal("cell not loadable past temp debris")
	}
}

// TestCacheConcurrentDistinctKeys: writers on different cells never
// contend (distinct files); all cells land intact.
func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c, err := OpenCache(t.TempDir(), "")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	cfgs := make([]struct {
		cfg core.Config
		exp *core.Experiment
	}, n)
	for i := range cfgs {
		cfgs[i].cfg = cellConfig(int64(100 + i))
		exp, err := core.RunContext(context.Background(), cfgs[i].cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfgs[i].exp = exp
	}
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if err := c.Store(cfgs[i].cfg, cfgs[i].exp); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := range cfgs {
		got, ok := c.Load(cfgs[i].cfg)
		if !ok || !reflect.DeepEqual(got.Samples, cfgs[i].exp.Samples) {
			t.Errorf("cell %d not intact", i)
		}
	}
	if s := c.Stats(); s.Corrupt != 0 {
		t.Errorf("corrupt = %d, want 0", s.Corrupt)
	}
	// No temp debris left behind by successful stores.
	entries, err := os.ReadDir(filepath.Join(c.Dir(), "cells"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s after clean stores", e.Name())
		}
	}
}
