package sweep

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/core"
)

// Fuzz targets for the two on-disk formats the sweep engine trusts its
// resumability to: the JSONL manifest and the bmcell sample file. The
// corpora are checked in as code (the repo's netsim/httpsim convention) so
// `go test` replays them on every CI run even without -fuzz.

// manifestSeedCorpus covers the parser's interesting shapes: valid,
// torn-tail, flipped-byte, header-only, wrong version, and plain garbage.
func manifestSeedCorpus(t testing.TB) [][]byte {
	valid := manifestBytes(t, "sweep-fuzz", []ManifestEntry{testEntry(1), testEntry(2)})
	torn := append([]byte(nil), valid[:len(valid)-9]...)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x20
	headerOnly := manifestBytes(t, "sweep-fuzz", nil)
	badHeader := append([]byte(nil), headerOnly...)
	badHeader[5] ^= 0x01
	return [][]byte{
		valid,
		torn,
		flipped,
		headerOnly,
		badHeader,
		nil,
		[]byte("\n"),
		[]byte("not a manifest at all"),
		[]byte(`{"v":99,"sweep":"x","sum":"deadbeef00000000"}` + "\n"),
		bytes.Repeat([]byte(`{"k":`), 64),
	}
}

// cellSeedCorpus mirrors it for the cell decoder.
func cellSeedCorpus() [][]byte {
	samples := []core.Sample{
		{Run: 0, Round: 1, BrowserRTT: 3 * time.Millisecond, WireRTT: time.Millisecond, Overhead: 2 * time.Millisecond},
		{Run: 0, Round: 2, BrowserRTT: 2 * time.Millisecond, WireRTT: time.Millisecond, Overhead: time.Millisecond, Handshake: true},
	}
	key := testEntry(1).Key
	valid := encodeCell(key, samples)
	empty := encodeCell(key, nil)
	torn := append([]byte(nil), valid[:len(valid)-20]...)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x01
	badCount := bytes.Replace(append([]byte(nil), valid...), []byte("\nn 2\n"), []byte("\nn 3\n"), 1)
	return [][]byte{
		valid,
		empty,
		torn,
		flipped,
		badCount,
		nil,
		[]byte("\n"),
		[]byte(cellMagic + "\n"),
		[]byte("bmcell v2\nkey 00\nn 0\nsum 00\n"),
		bytes.Repeat([]byte("s 1 1 1 1 0\n"), 32),
	}
}

// checkManifestParse holds ParseManifest's fuzz invariants: it never
// panics, and any accepted parse is self-consistent and round-trips.
func checkManifestParse(t *testing.T, data []byte) {
	t.Helper()
	id, entries, _, err := ParseManifest(data)
	if err != nil {
		return
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.Sum != e.sum() {
			t.Fatalf("accepted entry with bad self-check: %+v", e)
		}
		if len(e.Key) != 64 || !isLowerHex([]byte(e.Key)) {
			t.Fatalf("accepted entry with malformed key: %q", e.Key)
		}
		if seen[e.Key] {
			t.Fatalf("accepted duplicate key: %q", e.Key)
		}
		seen[e.Key] = true
	}
	// Round-trip: re-serializing the accepted entries must parse back to
	// exactly the same sweep with nothing dropped.
	again := manifestBytes(t, id, entries)
	id2, entries2, dropped2, err2 := ParseManifest(again)
	if err2 != nil || id2 != id || dropped2 != 0 || !reflect.DeepEqual(entries2, entries) {
		t.Fatalf("manifest round-trip diverged: err=%v id=%q dropped=%d", err2, id2, dropped2)
	}
}

// checkCellDecode holds decodeCell's fuzz invariants: no panics, and an
// accepted decode re-encodes canonically to the same key and samples, with
// Overhead always the exact BrowserRTT − WireRTT.
func checkCellDecode(t *testing.T, data []byte) {
	t.Helper()
	key, samples, err := decodeCell(data)
	if err != nil {
		return
	}
	for _, s := range samples {
		if s.Overhead != s.BrowserRTT-s.WireRTT {
			t.Fatalf("accepted inconsistent sample: %+v", s)
		}
		if s.Run < 0 || s.Round < 1 {
			t.Fatalf("accepted out-of-range sample: %+v", s)
		}
	}
	again := encodeCell(key, samples)
	key2, samples2, err2 := decodeCell(again)
	if err2 != nil || key2 != key || !reflect.DeepEqual(samples2, samples) {
		t.Fatalf("cell round-trip diverged: err=%v", err2)
	}
}

func FuzzManifestParse(f *testing.F) {
	for _, seed := range manifestSeedCorpus(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) { checkManifestParse(t, data) })
}

func FuzzCellDecode(f *testing.F) {
	for _, seed := range cellSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) { checkCellDecode(t, data) })
}

// TestSweepFuzzSeedCorpus replays both seed corpora as a plain test so the
// invariants run under `go test` (and CI) without -fuzz.
func TestSweepFuzzSeedCorpus(t *testing.T) {
	for _, seed := range manifestSeedCorpus(t) {
		seed := seed
		t.Run("manifest", func(t *testing.T) { checkManifestParse(t, seed) })
	}
	for _, seed := range cellSeedCorpus() {
		seed := seed
		t.Run("cell", func(t *testing.T) { checkCellDecode(t, seed) })
	}
}

// TestCellSeedCorpusValidSeedDecodes sanity-checks that the "valid" seeds
// really exercise the accept path (a corpus of rejects would prove
// nothing).
func TestCellSeedCorpusValidSeedDecodes(t *testing.T) {
	if _, _, err := decodeCell(cellSeedCorpus()[0]); err != nil {
		t.Fatalf("canonical seed rejected: %v", err)
	}
	if _, _, _, err := ParseManifest(manifestSeedCorpus(t)[0]); err != nil {
		t.Fatalf("canonical manifest seed rejected: %v", err)
	}
}
