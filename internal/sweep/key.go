// Package sweep turns the study scheduler into a resumable, cache-backed
// sweep engine. Each cell of a methods × browsers × fault-profiles matrix
// is content-addressed by the SHA-256 of its full configuration (plus a
// code-version salt), its samples are persisted byte-exactly on disk, and
// a manifest written atomically per completed cell lets a killed sweep
// restart where it left off. The repo's determinism contract — byte-
// identical exports at any worker count — is what makes the cache sound,
// and the package's tests extend that contract to "cached replay is
// bit-identical to recomputation".
package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"github.com/browsermetric/browsermetric/internal/core"
)

// DefaultSalt versions the simulation semantics baked into cached cells.
// Bump it whenever a change anywhere in the simulator, methods, browser
// models, or fault profiles can alter a cell's samples: old entries then
// miss (they hash under the old salt) and are recomputed rather than
// silently replayed stale.
const DefaultSalt = "bmsweep-v1"

// Key is the flattened, canonical identity of one study cell: every field
// of core.Config and testbed.Config that can influence a measurement,
// plus the code-version salt. Observational fields (Tracer, Metrics) are
// deliberately absent — they cannot change any simulated outcome.
//
// TestKeyCoversEveryConfigField reflectively mutates every field of the
// config structs and asserts the key changes, so a new knob that is not
// threaded through KeyFromConfig fails the build's tests instead of
// silently aliasing distinct cells.
type Key struct {
	Salt    string
	Method  string
	Browser string
	OS      string
	// Load is the profile's background system-load factor: a WithLoad
	// variant measures different overheads than its idle base profile.
	Load   float64
	Timing string
	Runs   int
	GapNs  int64
	WarpNs int64
	Seed   int64

	// Testbed knobs (normalized: zero means the paper default, hashed as
	// that default so the two spellings name the same cell).
	ServerDelayNs     int64
	LinkRateBps       int64
	PropagationNs     int64
	LossRate          float64
	ServerParseCostNs int64
	Faults            string
}

// KeyFromConfig flattens a cell config into its canonical Key. The config
// is normalized first, so zero-valued knobs and their explicit paper
// defaults hash identically — exactly the equivalence RunContext applies
// when executing.
func KeyFromConfig(cfg core.Config, salt string) Key {
	if salt == "" {
		salt = DefaultSalt
	}
	cfg.Normalize()
	tb := cfg.Testbed
	tb.Normalize()
	k := Key{
		Salt:              salt,
		Method:            cfg.Method.String(),
		Timing:            cfg.Timing.String(),
		Runs:              cfg.Runs,
		GapNs:             int64(cfg.Gap),
		WarpNs:            int64(cfg.Warp),
		Seed:              tb.Seed,
		ServerDelayNs:     int64(tb.ServerDelay),
		LinkRateBps:       tb.LinkRate,
		PropagationNs:     int64(tb.Propagation),
		LossRate:          tb.LossRate,
		ServerParseCostNs: int64(tb.ServerParseCost),
		Faults:            tb.Faults.String(),
	}
	if cfg.Profile != nil {
		k.Browser = cfg.Profile.Browser.String()
		k.OS = cfg.Profile.OS.String()
		k.Load = cfg.Profile.Load()
	}
	return k
}

// Canonical renders the key as its canonical byte serialization: a fixed
// header and one name=value line per field, in declaration order. Floats
// are hex-formatted ('x'), which round-trips every bit of the float64 —
// two keys serialize identically iff they are equal.
func (k Key) Canonical() []byte {
	var b bytes.Buffer
	b.WriteString("browsermetric cell key v1\n")
	w := func(name, val string) {
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(val)
		b.WriteByte('\n')
	}
	w("salt", k.Salt)
	w("method", k.Method)
	w("browser", k.Browser)
	w("os", k.OS)
	w("load", strconv.FormatFloat(k.Load, 'x', -1, 64))
	w("timing", k.Timing)
	w("runs", strconv.Itoa(k.Runs))
	w("gap_ns", strconv.FormatInt(k.GapNs, 10))
	w("warp_ns", strconv.FormatInt(k.WarpNs, 10))
	w("seed", strconv.FormatInt(k.Seed, 10))
	w("server_delay_ns", strconv.FormatInt(k.ServerDelayNs, 10))
	w("link_rate_bps", strconv.FormatInt(k.LinkRateBps, 10))
	w("propagation_ns", strconv.FormatInt(k.PropagationNs, 10))
	w("loss_rate", strconv.FormatFloat(k.LossRate, 'x', -1, 64))
	w("server_parse_cost_ns", strconv.FormatInt(k.ServerParseCostNs, 10))
	w("faults", k.Faults)
	return b.Bytes()
}

// Hash returns the cell's content address: the lowercase hex SHA-256 of
// the canonical serialization.
func (k Key) Hash() string {
	sum := sha256.Sum256(k.Canonical())
	return hex.EncodeToString(sum[:])
}

// String identifies the cell for logs: "<method>/<browser> (<os>)/<faults>@<hash8>".
func (k Key) String() string {
	return fmt.Sprintf("%s/%s (%s)/%s@%s", k.Method, k.Browser, k.OS, k.Faults, k.Hash()[:8])
}
