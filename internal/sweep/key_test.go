package sweep

import (
	"reflect"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/core"
	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

// baseKeyConfig is a fully non-zero cell config, so every reflective
// mutation below lands on a value the normalizer cannot swallow.
func baseKeyConfig() core.Config {
	cfg := core.Config{
		Method:  methods.XHRGet,
		Profile: browser.Lookup(browser.Chrome, browser.Windows),
		Timing:  browser.NanoTime,
		Runs:    7,
		Gap:     3 * time.Second,
		Warp:    2 * time.Minute,
	}
	cfg.Testbed = testbed.Config{
		ServerDelay:     40 * time.Millisecond,
		LinkRate:        10_000_000,
		Propagation:     7 * time.Microsecond,
		LossRate:        0.02,
		ServerParseCost: 3 * time.Millisecond,
		Faults:          faults.Lossy1pct,
		Seed:            99,
	}
	return cfg
}

// TestKeyCoversEveryConfigField reflectively mutates each field of
// core.Config (and the nested testbed.Config) one at a time and asserts
// every mutation changes the cache key. When the config grows a knob that
// KeyFromConfig does not hash, this test fails — the exact "silently
// unhashed field" failure mode that would alias distinct cells.
func TestKeyCoversEveryConfigField(t *testing.T) {
	base := baseKeyConfig()
	baseHash := KeyFromConfig(base, "salt-a").Hash()

	// Observational fields: they cannot change a simulated outcome, so
	// the key deliberately excludes them. Everything else must be hashed.
	observational := map[string]bool{
		"Tracer":          true,
		"Metrics":         true,
		"Testbed.Tracer":  true,
		"Testbed.Metrics": true,
		"Testbed.Arena":   true,
	}

	type leaf struct {
		path string
		idx  []int
	}
	var leaves []leaf
	var collect func(rt reflect.Type, path string, idx []int)
	collect = func(rt reflect.Type, path string, idx []int) {
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			p := f.Name
			if path != "" {
				p = path + "." + f.Name
			}
			ix := append(append([]int(nil), idx...), i)
			// time.Duration and the enum types are int kinds; the only
			// true struct field is the nested testbed config.
			if f.Type.Kind() == reflect.Struct {
				collect(f.Type, p, ix)
				continue
			}
			leaves = append(leaves, leaf{p, ix})
		}
	}
	collect(reflect.TypeOf(core.Config{}), "", nil)

	mutated := 0
	for _, l := range leaves {
		if observational[l.path] {
			continue
		}
		cfg := base
		fv := reflect.ValueOf(&cfg).Elem().FieldByIndex(l.idx)
		switch fv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fv.SetInt(fv.Int() + 1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(fv.Uint() + 1)
		case reflect.Float32, reflect.Float64:
			fv.SetFloat(fv.Float() + 0.25)
		case reflect.String:
			fv.SetString(fv.String() + "x")
		case reflect.Bool:
			fv.SetBool(!fv.Bool())
		case reflect.Pointer:
			if fv.Type() == reflect.TypeOf((*browser.Profile)(nil)) {
				fv.Set(reflect.ValueOf(browser.Lookup(browser.Firefox, browser.Windows)))
				break
			}
			t.Fatalf("config field %s: unhandled pointer type %v — decide whether it belongs in the cache key and extend this test", l.path, fv.Type())
		default:
			t.Fatalf("config field %s: unhandled kind %v — decide whether it belongs in the cache key and extend this test", l.path, fv.Kind())
		}
		if got := KeyFromConfig(cfg, "salt-a").Hash(); got == baseHash {
			t.Errorf("mutating %s did not change the cache key: the field is silently unhashed", l.path)
		}
		mutated++
	}
	// The walk must have actually exercised the config surface: 7 fields
	// in core.Config + 7 in testbed.Config minus the 4 observational.
	if mutated < 10 {
		t.Fatalf("only %d fields mutated; the reflective walk is broken", mutated)
	}
}

// TestKeyExcludesObservationalFields: attaching a tracer or metrics
// registry must not re-key a cell — observability is free to vary between
// the run that populated the cache and the run that replays it.
func TestKeyExcludesObservationalFields(t *testing.T) {
	base := baseKeyConfig()
	want := KeyFromConfig(base, "").Hash()
	cfg := base
	cfg.Tracer = nil
	cfg.Metrics = nil
	if got := KeyFromConfig(cfg, "").Hash(); got != want {
		t.Errorf("nil observability changed the key")
	}
}

// TestKeyProfileLoadHashed: a WithLoad profile variant measures different
// overheads, so it must never collide with its idle base profile. The
// load factor is unexported in browser.Profile, which is exactly how it
// could escape a naive key — this pins the dedicated accessor path.
func TestKeyProfileLoadHashed(t *testing.T) {
	base := baseKeyConfig()
	loaded := base
	loaded.Profile = base.Profile.WithLoad(0.5)
	if KeyFromConfig(base, "").Hash() == KeyFromConfig(loaded, "").Hash() {
		t.Errorf("WithLoad(0.5) profile variant hashes identically to the idle profile")
	}
}

// TestKeySaltVersioning: the same cell under a different code-version
// salt is a different address, so stale entries from older simulation
// semantics can never be replayed.
func TestKeySaltVersioning(t *testing.T) {
	base := baseKeyConfig()
	a := KeyFromConfig(base, "salt-a").Hash()
	b := KeyFromConfig(base, "salt-b").Hash()
	if a == b {
		t.Errorf("salt does not participate in the key")
	}
	if KeyFromConfig(base, "").Hash() != KeyFromConfig(base, DefaultSalt).Hash() {
		t.Errorf("empty salt must mean DefaultSalt")
	}
}

// TestKeyNormalization: zero-valued knobs hash as their paper defaults,
// so "default by omission" and "default spelled out" name the same cell.
func TestKeyNormalization(t *testing.T) {
	implicit := core.Config{
		Method:  methods.WebSocket,
		Profile: browser.Lookup(browser.Chrome, browser.Ubuntu),
	}
	explicit := implicit
	explicit.Runs = 50
	explicit.Gap = 10 * time.Second
	explicit.Testbed.ServerDelay = 50 * time.Millisecond
	explicit.Testbed.LinkRate = 100_000_000
	explicit.Testbed.Propagation = 5 * time.Microsecond
	if KeyFromConfig(implicit, "").Hash() != KeyFromConfig(explicit, "").Hash() {
		t.Errorf("zero config and explicit paper defaults hash differently")
	}
}

// TestKeyCanonicalCoversEveryKeyField is the inner guard: mutating any
// field of the flattened Key struct must change its canonical bytes (and
// therefore the hash). A Key field that Canonical() forgets to render
// fails here.
func TestKeyCanonicalCoversEveryKeyField(t *testing.T) {
	base := Key{
		Salt: "s", Method: "m", Browser: "b", OS: "o", Load: 0.5,
		Timing: "t", Runs: 3, GapNs: 5, WarpNs: 7, Seed: 11,
		ServerDelayNs: 13, LinkRateBps: 17, PropagationNs: 19,
		LossRate: 0.25, ServerParseCostNs: 23, Faults: "f",
	}
	baseBytes := string(base.Canonical())
	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		k := base
		fv := reflect.ValueOf(&k).Elem().Field(i)
		switch fv.Kind() {
		case reflect.Int, reflect.Int64:
			fv.SetInt(fv.Int() + 1)
		case reflect.Float64:
			fv.SetFloat(fv.Float() + 0.25)
		case reflect.String:
			fv.SetString(fv.String() + "x")
		default:
			t.Fatalf("Key field %s: unhandled kind %v — extend Canonical and this test", rt.Field(i).Name, fv.Kind())
		}
		if string(k.Canonical()) == baseBytes {
			t.Errorf("mutating Key.%s did not change Canonical()", rt.Field(i).Name)
		}
		if k.Hash() == base.Hash() {
			t.Errorf("mutating Key.%s did not change Hash()", rt.Field(i).Name)
		}
	}
}

// TestKeyStringStable pins the log identity format.
func TestKeyStringStable(t *testing.T) {
	k := KeyFromConfig(baseKeyConfig(), "salt-a")
	s := k.String()
	if len(s) == 0 || s[len(s)-9] != '@' {
		t.Fatalf("Key.String() = %q, want ...@<8 hex>", s)
	}
}
