package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// The manifest is an append-only JSONL file: a header line identifying
// the sweep configuration, then one line per completed (non-skipped)
// cell, each carrying its own truncated-SHA-256 self-check. Lines are
// appended with a single O_APPEND write as each cell finishes, so a
// killed sweep leaves at worst one torn final line — which the self-check
// rejects on resume, costing one recomputed cell instead of a corrupt
// sweep.

// manifestVersion is bumped with any incompatible format change.
const manifestVersion = 1

// ManifestEntry records one completed cell.
type ManifestEntry struct {
	// Faults, Method, Profile identify the cell for humans; Key is the
	// authoritative content address (the cache file name).
	Faults  string `json:"faults"`
	Method  string `json:"method"`
	Profile string `json:"profile"`
	Key     string `json:"key"`
	// Cached reports the cell was already warm when this sweep first
	// completed it.
	Cached bool `json:"cached"`
	// Sum is the first 16 hex digits of the SHA-256 over the other
	// fields; a line whose Sum does not verify is dropped on parse.
	Sum string `json:"sum"`
}

func (e *ManifestEntry) sum() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%s|%s|%t", e.Faults, e.Method, e.Profile, e.Key, e.Cached)))
	return hex.EncodeToString(h[:8])
}

type manifestHeader struct {
	V     int    `json:"v"`
	Sweep string `json:"sweep"`
	Sum   string `json:"sum"`
}

func (h *manifestHeader) sum() string {
	s := sha256.Sum256([]byte(fmt.Sprintf("%d|%s", h.V, h.Sweep)))
	return hex.EncodeToString(s[:8])
}

// Manifest tracks which cells of a sweep have completed, durably.
// Append is safe for concurrent use by study workers.
type Manifest struct {
	path    string
	sweepID string

	mu      sync.Mutex
	f       *os.File
	done    map[string]bool
	entries []ManifestEntry
	dropped int
}

// CreateManifest starts a fresh manifest at path for the given sweep
// identity, truncating any previous one.
func CreateManifest(path, sweepID string) (*Manifest, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: create manifest: %w", err)
	}
	h := manifestHeader{V: manifestVersion, Sweep: sweepID}
	h.Sum = h.sum()
	line, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: create manifest: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: create manifest: %w", err)
	}
	return &Manifest{path: path, sweepID: sweepID, f: f, done: map[string]bool{}}, nil
}

// ResumeManifest reopens an existing manifest, tolerating a torn or
// corrupted tail (such lines are dropped and their cells recomputed). A
// missing file starts fresh. A manifest written by a sweep with a
// different configuration is an error: resuming it would silently change
// what the sweep measures.
func ResumeManifest(path, sweepID string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return CreateManifest(path, sweepID)
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: resume manifest: %w", err)
	}
	gotID, entries, dropped, perr := ParseManifest(data)
	if perr != nil {
		return nil, fmt.Errorf("sweep: resume manifest: %w", perr)
	}
	if gotID != sweepID {
		return nil, fmt.Errorf("sweep: manifest %s belongs to a different sweep configuration (%s != %s); rerun without -resume or point -cache-dir elsewhere",
			path, short(gotID), short(sweepID))
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: resume manifest: %w", err)
	}
	// A SIGKILLed sweep can leave a torn final line with no newline;
	// terminate it now so the next Append starts a fresh line instead of
	// concatenating onto the fragment (which would corrupt both).
	if len(data) > 0 && data[len(data)-1] != '\n' {
		if _, werr := f.Write([]byte("\n")); werr != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: resume manifest: %w", werr)
		}
	}
	m := &Manifest{path: path, sweepID: sweepID, f: f, done: map[string]bool{}, entries: entries, dropped: dropped}
	for _, e := range entries {
		m.done[e.Key] = true
	}
	return m, nil
}

func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// ParseManifest decodes manifest bytes: the header line, then entries.
// Lines that fail to parse or self-check are counted in dropped and
// skipped (a torn tail after SIGKILL is the expected case); duplicate
// keys keep the first occurrence. Only a missing or invalid header is an
// error — without a trustworthy sweep identity nothing can be resumed.
func ParseManifest(data []byte) (sweepID string, entries []ManifestEntry, dropped int, err error) {
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) == 0 {
		return "", nil, 0, fmt.Errorf("sweep: manifest: empty")
	}
	var h manifestHeader
	if jerr := json.Unmarshal(lines[0], &h); jerr != nil {
		return "", nil, 0, fmt.Errorf("sweep: manifest: bad header: %w", jerr)
	}
	if h.V != manifestVersion {
		return "", nil, 0, fmt.Errorf("sweep: manifest: unsupported version %d", h.V)
	}
	if h.Sum != h.sum() {
		return "", nil, 0, fmt.Errorf("sweep: manifest: header checksum mismatch")
	}
	seen := map[string]bool{}
	for _, ln := range lines[1:] {
		if len(ln) == 0 {
			continue
		}
		var e ManifestEntry
		if jerr := json.Unmarshal(ln, &e); jerr != nil {
			dropped++
			continue
		}
		if e.Sum != e.sum() || len(e.Key) != 64 || !isLowerHex([]byte(e.Key)) {
			dropped++
			continue
		}
		if seen[e.Key] {
			continue
		}
		seen[e.Key] = true
		entries = append(entries, e)
	}
	return h.Sweep, entries, dropped, nil
}

// Has reports whether a cell key is already recorded.
func (m *Manifest) Has(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.done[key]
}

// Len returns the number of recorded cells.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Entries returns a copy of the recorded cells, in completion order.
func (m *Manifest) Entries() []ManifestEntry {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]ManifestEntry(nil), m.entries...)
}

// Dropped returns how many torn or corrupt lines the resume parse threw
// away.
func (m *Manifest) Dropped() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// Append durably records one completed cell: the entry (self-check
// filled in) is written as a single appended line. Recording an
// already-present key is a no-op, so revalidated warm cells never
// duplicate their entries.
func (m *Manifest) Append(e ManifestEntry) error {
	e.Sum = e.sum()
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("sweep: manifest append: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done[e.Key] {
		return nil
	}
	if _, err := m.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweep: manifest append: %w", err)
	}
	m.done[e.Key] = true
	m.entries = append(m.entries, e)
	return nil
}

// Close releases the append handle. The manifest remains readable for
// stats after Close.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	return err
}
