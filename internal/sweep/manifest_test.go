package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testEntry(i int) ManifestEntry {
	return ManifestEntry{
		Faults:  "clean",
		Method:  fmt.Sprintf("method-%d", i),
		Profile: "C (W)",
		Key:     fmt.Sprintf("%064x", i+1),
	}
}

// manifestBytes renders a syntactically valid manifest the way the writer
// would, for tests and fuzz seeds.
func manifestBytes(t testing.TB, sweepID string, entries []ManifestEntry) []byte {
	t.Helper()
	h := manifestHeader{V: manifestVersion, Sweep: sweepID}
	h.Sum = h.sum()
	line, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	out := append(line, '\n')
	for _, e := range entries {
		e.Sum = e.sum()
		el, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		out = append(append(out, el...), '\n')
	}
	return out
}

func TestManifestCreateAppendResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	m, err := CreateManifest(path, "sweep-a")
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := testEntry(1), testEntry(2)
	for _, e := range []ManifestEntry{e1, e2, e1 /* duplicate: no-op */} {
		if err := m.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (duplicate must dedup)", m.Len())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := ResumeManifest(path, "sweep-a")
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != 2 || m2.Dropped() != 0 {
		t.Fatalf("resumed Len=%d Dropped=%d, want 2/0", m2.Len(), m2.Dropped())
	}
	if !m2.Has(e1.Key) || !m2.Has(e2.Key) {
		t.Errorf("resumed manifest lost keys")
	}
	if err := m2.Append(testEntry(3)); err != nil {
		t.Fatal(err)
	}
	ents := m2.Entries()
	if len(ents) != 3 || ents[0].Key != e1.Key || ents[2].Key != testEntry(3).Key {
		t.Errorf("entries out of completion order: %+v", ents)
	}
}

func TestManifestResumeMissingFileStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	m, err := ResumeManifest(path, "sweep-a")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("fresh manifest not created: %v", err)
	}
}

// TestManifestResumeWrongSweepRejected: a manifest written under a
// different sweep configuration must refuse to resume — silently finishing
// someone else's sweep would change what the output measures.
func TestManifestResumeWrongSweepRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	m, err := CreateManifest(path, "sweep-a")
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := ResumeManifest(path, "sweep-b"); err == nil ||
		!strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("err = %v, want a different-sweep rejection", err)
	}
}

// TestManifestTornTailDropped is the SIGKILL scenario: the file ends in a
// half-written entry line. Resume must keep every complete entry, drop
// exactly the torn one, and keep appending.
func TestManifestTornTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	data := manifestBytes(t, "sweep-a", []ManifestEntry{testEntry(1), testEntry(2), testEntry(3)})
	// Cut mid-way through the final entry line.
	if err := os.WriteFile(path, data[:len(data)-15], 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ResumeManifest(path, "sweep-a")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 2 || m.Dropped() != 1 {
		t.Fatalf("Len=%d Dropped=%d, want 2 kept / 1 torn line dropped", m.Len(), m.Dropped())
	}
	if m.Has(testEntry(3).Key) {
		t.Errorf("torn entry's key reported as done — its cell would never be re-recorded")
	}
	// The recovered cell re-appends cleanly and a further resume sees it.
	if err := m.Append(testEntry(3)); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m2, err := ResumeManifest(path, "sweep-a")
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != 3 {
		t.Fatalf("after recovery Len = %d, want 3", m2.Len())
	}
	// The torn fragment is still in the file (append-only), still dropped.
	if m2.Dropped() != 1 {
		t.Errorf("Dropped = %d, want the torn fragment still counted once", m2.Dropped())
	}
}

// TestManifestCorruptEntryDropped: an entry whose bytes were altered fails
// its self-check and is dropped rather than trusted.
func TestManifestCorruptEntryDropped(t *testing.T) {
	data := manifestBytes(t, "sweep-a", []ManifestEntry{testEntry(1), testEntry(2)})
	// Flip the final hex digit of the second entry's key: still valid JSON
	// and valid hex, but the self-check no longer matches.
	i := bytes.Index(data, []byte(testEntry(2).Key))
	if i < 0 {
		t.Fatal("key not found in manifest bytes")
	}
	i += len(testEntry(2).Key) - 1
	if data[i] == '0' {
		data[i] = '1'
	} else {
		data[i] = '0'
	}
	id, entries, dropped, err := ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if id != "sweep-a" || len(entries) != 1 || dropped != 1 {
		t.Fatalf("id=%q entries=%d dropped=%d, want sweep-a/1/1", id, len(entries), dropped)
	}
	if entries[0].Key != testEntry(1).Key {
		t.Errorf("wrong surviving entry: %+v", entries[0])
	}
}

// TestManifestHeaderCorruptionFatal: the header is the sweep's identity;
// if it cannot be trusted, nothing can be resumed.
func TestManifestHeaderCorruptionFatal(t *testing.T) {
	data := manifestBytes(t, "sweep-a", []ManifestEntry{testEntry(1)})
	data[10] ^= 0x01
	if _, _, _, err := ParseManifest(data); err == nil {
		t.Fatal("corrupt header parsed without error")
	}
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeManifest(path, "sweep-a"); err == nil {
		t.Fatal("ResumeManifest accepted a corrupt header")
	}
}

func TestManifestUnsupportedVersion(t *testing.T) {
	h := manifestHeader{V: manifestVersion + 1, Sweep: "sweep-a"}
	h.Sum = h.sum()
	line, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ParseManifest(append(line, '\n')); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want an unsupported-version error", err)
	}
}

func TestManifestEmptyAndGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {}, []byte("\n"), []byte("not json\n"), []byte(`{"v":1}` + "\n")} {
		if _, _, _, err := ParseManifest(data); err == nil {
			t.Errorf("ParseManifest(%q) succeeded, want error", data)
		}
	}
}

// TestManifestEntryKeyValidated: entries with malformed keys are dropped
// even if their checksum is internally consistent (defense in depth — the
// key becomes a file path downstream).
func TestManifestEntryKeyValidated(t *testing.T) {
	bad := ManifestEntry{Faults: "clean", Method: "m", Profile: "p", Key: "../../etc/passwd"}
	data := manifestBytes(t, "sweep-a", []ManifestEntry{bad})
	_, entries, dropped, err := ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || dropped != 1 {
		t.Fatalf("entries=%d dropped=%d, want the malformed key dropped", len(entries), dropped)
	}
}
