package sweep

import (
	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/core"
	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/methods"
)

// PlannedCell is one executable cell of a sweep matrix: its identity for
// humans and manifests, the exact config it runs under (seed included),
// and its content address in the cache. Skipped (unsupported) combos are
// absent from a plan — they produce no samples, no cache entry and no
// manifest line.
type PlannedCell struct {
	Faults  faults.Profile
	Method  methods.Kind
	Profile *browser.Profile
	// Config is the cell's full execution config, built by the same
	// core.CellConfig path the study scheduler uses, so executing it
	// out-of-process stores into the same cache entry.
	Config core.Config
	// Hash is the cell's content address under the sweep's salt — the
	// cache file name and the input to shard partitioning.
	Hash string
}

// ManifestEntry renders the planned cell's manifest line identity
// (Sum left for Manifest.Append to fill).
func (p *PlannedCell) ManifestEntry(cached bool) ManifestEntry {
	e := ManifestEntry{
		Faults: p.Faults.String(),
		Method: p.Method.String(),
		Key:    p.Hash,
		Cached: cached,
	}
	if p.Profile != nil {
		e.Profile = p.Profile.Label()
	}
	return e
}

// Plan enumerates every executable cell of the sweep in the deterministic
// matrix order Run executes them: fault-profile major, then method, then
// browser profile. Every process planning the same Options (same ID())
// derives the same cell list with the same content addresses — the
// property the distributed shard runner rests on: the coordinator ships
// only shard numbers, and workers re-derive the cells locally.
func Plan(opts Options) []PlannedCell {
	opts.fillDefaults()
	var out []PlannedCell
	for _, fp := range opts.Faults {
		so := opts.studyOptions(fp)
		for mi := range so.Methods {
			for pi := range so.Profiles {
				cfg, ok := core.CellConfig(&so, mi, pi)
				if !ok {
					continue
				}
				out = append(out, PlannedCell{
					Faults:  fp,
					Method:  so.Methods[mi],
					Profile: so.Profiles[pi],
					Config:  cfg,
					Hash:    KeyFromConfig(cfg, opts.Salt).Hash(),
				})
			}
		}
	}
	return out
}
