package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/core"
	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/stats"
)

// Options configures a sweep: the methods × browser-profiles × fault-
// profiles matrix, executed as one manifest-driven, cache-backed run.
type Options struct {
	// Methods defaults to the paper's ten compared methods.
	Methods []methods.Kind
	// Profiles defaults to the Table 2 browser×OS matrix.
	Profiles []*browser.Profile
	// Faults defaults to every built-in fault profile.
	Faults []faults.Profile
	// Timing selects the timestamping API (default Date.getTime).
	Timing browser.TimingFunc
	// Runs per cell and Gap between runs (defaults 50 and 10 s).
	Runs int
	Gap  time.Duration
	// BaseSeed decorrelates cells; every fault profile reuses the same
	// per-cell seed schedule, so differences between profiles are
	// attributable to the impairment alone.
	BaseSeed int64
	// Workers caps per-study concurrency. Exports are byte-identical for
	// any value; the sweep identity deliberately excludes it.
	Workers int

	// Dir is the cache directory (required): cells/<hash>.cell entries
	// plus the manifest.
	Dir string
	// Resume continues a previous sweep of the same configuration from
	// its manifest instead of starting a fresh one. Cache entries are
	// revalidated (content hash + checksum) either way.
	Resume bool
	// Salt is the code-version salt baked into every cell key
	// (DefaultSalt when empty).
	Salt string
	// Log, when non-nil, receives progress and corruption notices.
	Log func(format string, args ...any)
	// Metrics, when non-nil, receives the cache's hit/miss/corruption/
	// store counters as sweep_cache_* series. Excluded from the sweep
	// identity: observability never changes what is computed.
	Metrics *obs.Metrics
	// OnCell, when non-nil, fires per completed cell with the fault
	// profile it belongs to (see core.StudyOptions.OnCellDone caveats).
	OnCell func(fp faults.Profile, cs core.CellStatus)
}

func (o *Options) fillDefaults() {
	if len(o.Methods) == 0 {
		for _, s := range methods.Compared() {
			o.Methods = append(o.Methods, s.Kind)
		}
	}
	if len(o.Profiles) == 0 {
		o.Profiles = browser.Profiles()
	}
	if len(o.Faults) == 0 {
		o.Faults = faults.Profiles()
	}
	if o.Runs == 0 {
		o.Runs = 50
	}
	if o.Gap == 0 {
		o.Gap = 10 * time.Second
	}
	if o.Salt == "" {
		o.Salt = DefaultSalt
	}
	if o.Log == nil {
		o.Log = func(string, ...any) {}
	}
}

// ID returns the sweep's configuration identity: the SHA-256 of the
// canonical sweep description. Two sweeps share a manifest iff their IDs
// match. Workers is excluded (any worker count produces byte-identical
// exports); everything that can change a cell's samples or the matrix
// shape is included.
func (o Options) ID() string {
	o.fillDefaults()
	var b strings.Builder
	b.WriteString("browsermetric sweep v1\n")
	fmt.Fprintf(&b, "salt=%s\n", o.Salt)
	fmt.Fprintf(&b, "timing=%s\n", o.Timing)
	fmt.Fprintf(&b, "runs=%d\n", o.Runs)
	fmt.Fprintf(&b, "gap_ns=%d\n", int64(o.Gap))
	fmt.Fprintf(&b, "seed=%d\n", o.BaseSeed)
	for _, m := range o.Methods {
		fmt.Fprintf(&b, "method=%s\n", m)
	}
	for _, p := range o.Profiles {
		fmt.Fprintf(&b, "profile=%s load=%s\n", p.Label(), strconv.FormatFloat(p.Load(), 'x', -1, 64))
	}
	for _, fp := range o.Faults {
		fmt.Fprintf(&b, "faults=%s\n", fp)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Stats summarizes what a sweep did.
type Stats struct {
	// Cells is the matrix size; Skipped counts unsupported cells.
	Cells   int
	Skipped int
	// Computed cells ran the simulator; CachedHits replayed from disk.
	Computed   int
	CachedHits int
	// Resumed is how many cells the manifest already recorded when the
	// sweep started (0 on a fresh run).
	Resumed int
	// Corrupt counts cache entries that failed verification and were
	// recomputed.
	Corrupt int64
	// Wall is total host wall time.
	Wall time.Duration
}

// Result is a completed sweep: one study per fault profile, in Options
// order, plus the manifest and counters.
type Result struct {
	Options  Options
	Faults   []faults.Profile
	Studies  []*core.Study
	Manifest *Manifest
	Stats    Stats
}

// ManifestPath returns the manifest location inside a cache dir.
func ManifestPath(dir string) string { return filepath.Join(dir, "manifest.jsonl") }

// studyOptions builds the per-fault-profile study configuration exactly
// as Run executes it. Plan goes through the same construction, so a cell
// planned out-of-process is content-addressed identically to one the
// sweep scheduler runs. Callers fill Cache/OnCellDone themselves.
func (o *Options) studyOptions(fp faults.Profile) core.StudyOptions {
	so := core.StudyOptions{
		Methods:  o.Methods,
		Profiles: o.Profiles,
		Timing:   o.Timing,
		Runs:     o.Runs,
		Gap:      o.Gap,
		BaseSeed: o.BaseSeed,
		Workers:  o.Workers,
	}
	so.Testbed.Faults = fp
	return so
}

// Run executes the sweep: for each fault profile, the full methods ×
// profiles study runs under the deterministic scheduler with the
// content-addressed cache installed, and every completed cell is
// appended to the manifest. Cancelling ctx aborts between cells; a
// subsequent Run with Resume set finishes only the missing cells and
// exports byte-identically to an uninterrupted run.
func Run(ctx context.Context, opts Options) (*Result, error) {
	opts.fillDefaults()
	cache, err := OpenCache(opts.Dir, opts.Salt)
	if err != nil {
		return nil, err
	}
	cache.SetLog(opts.Log)
	cache.SetMetrics(opts.Metrics)

	sweepID := opts.ID()
	var m *Manifest
	if opts.Resume {
		m, err = ResumeManifest(ManifestPath(opts.Dir), sweepID)
	} else {
		m, err = CreateManifest(ManifestPath(opts.Dir), sweepID)
	}
	if err != nil {
		return nil, err
	}
	defer m.Close()

	res := &Result{Options: opts, Faults: opts.Faults, Manifest: m}
	res.Stats.Resumed = m.Len()
	if d := m.Dropped(); d > 0 {
		opts.Log("sweep: manifest: dropped %d torn/corrupt line(s); those cells will be recomputed or revalidated", d)
	}

	start := time.Now()
	for _, fp := range opts.Faults {
		so := opts.studyOptions(fp)
		so.Cache = &recordingCache{c: cache, m: m}
		if cb := opts.OnCell; cb != nil {
			prof := fp
			so.OnCellDone = func(cs core.CellStatus) { cb(prof, cs) }
		}
		st, err := core.RunStudyContext(ctx, so)
		if err != nil {
			return nil, fmt.Errorf("sweep: fault profile %s: %w", fp, err)
		}
		res.Studies = append(res.Studies, st)
		res.Stats.Cells += len(st.Cells)
		res.Stats.Skipped += st.Stats.CellsSkipped
		res.Stats.CachedHits += st.Stats.CellsCached
		res.Stats.Computed += st.Stats.CellsFinished - st.Stats.CellsSkipped - st.Stats.CellsCached
	}
	res.Stats.Wall = time.Since(start)
	res.Stats.Corrupt = cache.Stats().Corrupt
	if err := m.Close(); err != nil {
		return nil, fmt.Errorf("sweep: close manifest: %w", err)
	}
	return res, nil
}

// recordingCache wraps the disk cache so every completed (non-skipped)
// cell — computed or replayed — lands in the manifest exactly once.
type recordingCache struct {
	c *Cache
	m *Manifest
}

func (r *recordingCache) Load(cfg core.Config) (*core.Experiment, bool) {
	exp, ok := r.c.Load(cfg)
	if ok {
		// A revalidated warm cell still belongs in this sweep's manifest
		// (Append dedupes if it is already there from a resumed run).
		if err := r.record(cfg, true); err != nil {
			// Failing the manifest write must not serve stale bookkeeping:
			// treat it as a miss so the cell goes through Store's error path.
			return nil, false
		}
	}
	return exp, ok
}

func (r *recordingCache) Store(cfg core.Config, exp *core.Experiment) error {
	if err := r.c.Store(cfg, exp); err != nil {
		return err
	}
	return r.record(cfg, false)
}

func (r *recordingCache) record(cfg core.Config, cached bool) error {
	key := r.c.Key(cfg)
	e := ManifestEntry{
		Faults: cfg.Testbed.Faults.String(),
		Method: cfg.Method.String(),
		Key:    key.Hash(),
		Cached: cached,
	}
	if cfg.Profile != nil {
		e.Profile = cfg.Profile.Label()
	}
	return r.m.Append(e)
}

// WriteCSV exports every sample of every study with the fault profile in
// the leading column — the sweep-wide analogue of Study.WriteCSV, and
// the byte surface the cached ≡ recomputed equivalence tests compare.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"faults", "method", "browser", "os", "run", "round",
		"browser_rtt_ms", "wire_rtt_ms", "overhead_ms", "handshake",
	}); err != nil {
		return err
	}
	for si, st := range r.Studies {
		fp := r.Faults[si].String()
		for i := range st.Cells {
			c := &st.Cells[i]
			if c.Skipped {
				continue
			}
			for _, smp := range c.Exp.Samples {
				rec := []string{
					fp,
					c.Spec.Name,
					c.Profile.Browser.String(),
					c.Profile.OS.String(),
					strconv.Itoa(smp.Run),
					strconv.Itoa(smp.Round),
					fmtMs(stats.Ms(smp.BrowserRTT)),
					fmtMs(stats.Ms(smp.WireRTT)),
					fmtMs(stats.Ms(smp.Overhead)),
					strconv.FormatBool(smp.Handshake),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtMs(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// Report renders the sweep as a text table: one row per method, the
// median (across browser profiles) of per-cell median Δd2 under each
// fault profile. Deterministic: same options ⇒ byte-identical output.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep — median Δd2 (ms) across %d browser profiles, %d runs/cell, seed %d\n\n",
		len(r.Options.Profiles), r.Options.Runs, r.Options.BaseSeed)
	fmt.Fprintf(&b, "%-22s", "method")
	for _, fp := range r.Faults {
		fmt.Fprintf(&b, " %12s", fp)
	}
	b.WriteString("\n")
	for _, k := range r.Options.Methods {
		fmt.Fprintf(&b, "%-22s", methods.Get(k).Name)
		for si := range r.Studies {
			var meds []float64
			for _, c := range r.Studies[si].MethodCells(k) {
				meds = append(meds, c.Exp.MedianOverhead(2))
			}
			if len(meds) == 0 {
				fmt.Fprintf(&b, " %12s", "-")
				continue
			}
			fmt.Fprintf(&b, " %12.2f", stats.Median(meds))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// StatsLine summarizes the run's bookkeeping for humans. Unlike Report it
// depends on how the sweep executed (cold vs warm vs resumed), so it is
// deliberately not part of the byte-identical export surface.
func (r *Result) StatsLine() string {
	return fmt.Sprintf("%d cells: %d computed, %d cached, %d skipped (%d resumed from manifest, %d corrupt entries recomputed)",
		r.Stats.Cells, r.Stats.Computed, r.Stats.CachedHits, r.Stats.Skipped, r.Stats.Resumed, r.Stats.Corrupt)
}
