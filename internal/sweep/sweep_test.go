package sweep

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/core"
	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/methods"
)

// sweepExportBytes renders every deterministic byte surface of a sweep:
// the full per-sample CSV and the text report. The cached ≡ recomputed
// contract is asserted over these bytes.
func sweepExportBytes(t testing.TB, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(r.Report())
	return buf.Bytes()
}

// windowsProfiles returns the paper's five Windows browsers — the "5
// browsers" axis of the acceptance matrix.
func windowsProfiles(t testing.TB) []*browser.Profile {
	t.Helper()
	var out []*browser.Profile
	for _, n := range []browser.Name{browser.Chrome, browser.Firefox, browser.IE, browser.Opera, browser.Safari} {
		p := browser.Lookup(n, browser.Windows)
		if p == nil {
			t.Fatalf("no profile for %s on Windows", n)
		}
		out = append(out, p)
	}
	return out
}

// smallOpts is a 4 methods × 2 profiles × 2 faults (16-cell) matrix for
// the faster equivalence tests.
func smallOpts(dir string) Options {
	return Options{
		Methods: []methods.Kind{methods.XHRGet, methods.DOM, methods.WebSocket, methods.JavaTCP},
		Profiles: []*browser.Profile{
			browser.Lookup(browser.Chrome, browser.Windows),
			browser.Lookup(browser.Firefox, browser.Ubuntu),
		},
		Faults:   []faults.Profile{faults.Clean, faults.BurstyWiFi},
		Runs:     2,
		Gap:      time.Second,
		BaseSeed: 11,
		Dir:      dir,
	}
}

// TestSweepWarmReplayByteIdenticalAndFast is the PR's acceptance test: a
// 150-cell sweep (10 methods × 5 browsers × 3 fault profiles) replayed
// warm from the cache must be at least 10× faster than the cold run and
// export byte-identically to it.
func TestSweepWarmReplayByteIdenticalAndFast(t *testing.T) {
	opts := Options{
		// Methods defaults to the paper's ten compared methods.
		Profiles: windowsProfiles(t),
		Faults:   []faults.Profile{faults.Clean, faults.Lossy1pct, faults.BurstyWiFi},
		Runs:     10,
		Gap:      time.Second,
		BaseSeed: 42,
		Dir:      t.TempDir(),
	}

	cold, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Cells != 150 {
		t.Fatalf("matrix has %d cells, want 10 methods × 5 browsers × 3 faults = 150", cold.Stats.Cells)
	}
	if cold.Stats.CachedHits != 0 || cold.Stats.Computed == 0 {
		t.Fatalf("cold run stats %+v: want everything computed, nothing cached", cold.Stats)
	}
	if cold.Stats.Computed+cold.Stats.Skipped != cold.Stats.Cells {
		t.Fatalf("cold run stats %+v: computed+skipped != cells", cold.Stats)
	}
	coldBytes := sweepExportBytes(t, cold)

	warm, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Computed != 0 {
		t.Errorf("warm run recomputed %d cells, want 0", warm.Stats.Computed)
	}
	if warm.Stats.CachedHits != cold.Stats.Computed {
		t.Errorf("warm run replayed %d cells, want %d", warm.Stats.CachedHits, cold.Stats.Computed)
	}
	warmBytes := sweepExportBytes(t, warm)
	if !bytes.Equal(warmBytes, coldBytes) {
		t.Errorf("warm replay is not byte-identical to cold computation (%d vs %d bytes)",
			len(warmBytes), len(coldBytes))
	}
	ratio := float64(cold.Stats.Wall) / float64(warm.Stats.Wall)
	t.Logf("cold %v, warm %v (%.1f×)", cold.Stats.Wall, warm.Stats.Wall, ratio)
	if warm.Stats.Wall*10 > cold.Stats.Wall {
		t.Errorf("warm replay not ≥10× faster: cold %v, warm %v (%.1f×)",
			cold.Stats.Wall, warm.Stats.Wall, ratio)
	}
}

// TestSweepMatchesUncachedStudies: the sweep engine with its cache
// installed produces exactly the studies a plain uncached
// core.RunStudyContext produces — caching must be invisible in the data.
func TestSweepMatchesUncachedStudies(t *testing.T) {
	opts := smallOpts(t.TempDir())
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for si, fp := range res.Faults {
		so := core.StudyOptions{
			Methods:  opts.Methods,
			Profiles: opts.Profiles,
			Runs:     opts.Runs,
			Gap:      opts.Gap,
			BaseSeed: opts.BaseSeed,
		}
		so.Testbed.Faults = fp
		st, err := core.RunStudyContext(context.Background(), so)
		if err != nil {
			t.Fatal(err)
		}
		var want, got bytes.Buffer
		if err := st.WriteCSV(&want); err != nil {
			t.Fatal(err)
		}
		if err := st.SummaryCSV(&want); err != nil {
			t.Fatal(err)
		}
		if err := res.Studies[si].WriteCSV(&got); err != nil {
			t.Fatal(err)
		}
		if err := res.Studies[si].SummaryCSV(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("fault profile %s: sweep study differs from uncached study", fp)
		}
	}
}

// TestSweepInterruptResumeEquivalence: a sweep cancelled mid-flight and
// then resumed exports byte-identically to an uninterrupted sweep, at
// every worker count the repo's determinism contract covers.
func TestSweepInterruptResumeEquivalence(t *testing.T) {
	baseline, err := Run(context.Background(), smallOpts(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	want := sweepExportBytes(t, baseline)

	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		opts := smallOpts(t.TempDir())
		opts.Workers = w

		// Cancel after the third completed cell.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var done atomic.Int32
		opts.OnCell = func(fp faults.Profile, cs core.CellStatus) {
			if done.Add(1) == 3 {
				cancel()
			}
		}
		if _, err := Run(ctx, opts); !errors.Is(err, context.Canceled) {
			t.Fatalf("Workers=%d: interrupted run returned %v, want context.Canceled", w, err)
		}

		// Resume from the manifest: only the missing cells run.
		opts.OnCell = nil
		opts.Resume = true
		res, err := Run(context.Background(), opts)
		if err != nil {
			t.Fatalf("Workers=%d: resume: %v", w, err)
		}
		if res.Stats.Resumed < 3 {
			t.Errorf("Workers=%d: manifest recorded %d cells before the kill, want ≥ 3", w, res.Stats.Resumed)
		}
		if res.Stats.Computed+res.Stats.CachedHits+res.Stats.Skipped != res.Stats.Cells {
			t.Errorf("Workers=%d: stats don't add up: %+v", w, res.Stats)
		}
		if got := sweepExportBytes(t, res); !bytes.Equal(got, want) {
			t.Errorf("Workers=%d: resumed sweep is not byte-identical to an uninterrupted one", w)
		}
	}
}

// TestSweepCorruptCellRecovery: flipping a byte in one cached cell file
// must be detected on the next run, logged, recomputed — and the final
// exports must still be byte-identical to the originals.
func TestSweepCorruptCellRecovery(t *testing.T) {
	opts := smallOpts(t.TempDir())
	opts.Workers = 1 // serialize so the log capture needs no locking
	lg := &syncLog{}
	opts.Log = lg.logf

	cold, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := sweepExportBytes(t, cold)

	cellsDir := filepath.Join(opts.Dir, "cells")
	names, err := os.ReadDir(cellsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != cold.Stats.Computed {
		t.Fatalf("%d cell files on disk, want %d", len(names), cold.Stats.Computed)
	}
	victim := filepath.Join(cellsDir, names[0].Name())
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	warm, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", warm.Stats.Corrupt)
	}
	if warm.Stats.Computed != 1 {
		t.Errorf("Computed = %d, want exactly the corrupted cell recomputed", warm.Stats.Computed)
	}
	if warm.Stats.CachedHits != cold.Stats.Computed-1 {
		t.Errorf("CachedHits = %d, want %d", warm.Stats.CachedHits, cold.Stats.Computed-1)
	}
	if !strings.Contains(lg.String(), "corrupt") {
		t.Errorf("corruption was not logged; log:\n%s", lg.String())
	}
	if got := sweepExportBytes(t, warm); !bytes.Equal(got, want) {
		t.Errorf("recovered sweep is not byte-identical to the original")
	}
}

// TestSweepManifestTornTailResume: a manifest torn mid-entry (the SIGKILL
// case) resumes cleanly — the torn cell revalidates from the cache and the
// exports are unchanged.
func TestSweepManifestTornTailResume(t *testing.T) {
	opts := smallOpts(t.TempDir())
	cold, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want := sweepExportBytes(t, cold)
	recorded := cold.Manifest.Len()

	mpath := ManifestPath(opts.Dir)
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, data[:len(data)-12], 0o644); err != nil {
		t.Fatal(err)
	}

	opts.Resume = true
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Resumed != recorded-1 {
		t.Errorf("Resumed = %d, want %d (one torn entry dropped)", res.Stats.Resumed, recorded-1)
	}
	if res.Stats.Computed != 0 {
		t.Errorf("Computed = %d, want 0: the torn cell's data is still cached", res.Stats.Computed)
	}
	if res.Manifest.Len() != recorded {
		t.Errorf("manifest ends with %d entries, want %d", res.Manifest.Len(), recorded)
	}
	if got := sweepExportBytes(t, res); !bytes.Equal(got, want) {
		t.Errorf("torn-tail resume is not byte-identical to the original")
	}
}

// TestSweepResumeRejectsDifferentConfig: -resume against a manifest from a
// differently configured sweep must fail loudly, not blend two sweeps.
func TestSweepResumeRejectsDifferentConfig(t *testing.T) {
	opts := smallOpts(t.TempDir())
	if _, err := Run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	opts.Runs++
	opts.Resume = true
	if _, err := Run(context.Background(), opts); err == nil ||
		!strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("err = %v, want a different-sweep rejection", err)
	}
}

// TestSweepIDSemantics: the sweep identity includes everything that can
// change the data and excludes the execution knobs that cannot.
func TestSweepIDSemantics(t *testing.T) {
	base := smallOpts("unused")
	if a, b := base, base; a.ID() != b.ID() {
		t.Fatal("identical options produced different IDs")
	}
	workers := base
	workers.Workers = 7
	if workers.ID() != base.ID() {
		t.Errorf("Workers changed the sweep ID; exports are worker-invariant, so it must not")
	}
	dir := base
	dir.Dir = "elsewhere"
	if dir.ID() != base.ID() {
		t.Errorf("Dir changed the sweep ID; the same sweep may live in any directory")
	}
	for name, mut := range map[string]func(*Options){
		"Runs":     func(o *Options) { o.Runs++ },
		"Gap":      func(o *Options) { o.Gap += time.Second },
		"BaseSeed": func(o *Options) { o.BaseSeed++ },
		"Timing":   func(o *Options) { o.Timing = browser.NanoTime },
		"Salt":     func(o *Options) { o.Salt = "other" },
		"Methods":  func(o *Options) { o.Methods = o.Methods[:3] },
		"Profiles": func(o *Options) { o.Profiles = o.Profiles[:1] },
		"Faults":   func(o *Options) { o.Faults = o.Faults[:1] },
		"Load":     func(o *Options) { o.Profiles = []*browser.Profile{o.Profiles[0].WithLoad(0.3)} },
	} {
		o := smallOpts("unused")
		mut(&o)
		if o.ID() == base.ID() {
			t.Errorf("mutating %s did not change the sweep ID", name)
		}
	}
}

func TestSweepRequiresDir(t *testing.T) {
	opts := smallOpts("")
	if _, err := Run(context.Background(), opts); err == nil {
		t.Fatal("Run without Dir succeeded, want error")
	}
}
