package tcpsim

import (
	"bytes"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
)

func TestSlowStartGrowsWindow(t *testing.T) {
	sim := eventsim.New(21)
	client, server := pair(t, sim, 5*time.Millisecond) // RTT ~ 20ms
	var got []byte
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) { got = append(got, b...) }
	})
	payload := make([]byte, 64*MSS)
	c, _ := client.Dial(ipB, 80)
	c.OnEstablished = func() { c.Send(payload) }
	sim.RunUntil(time.Minute)

	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d of %d bytes", len(got), len(payload))
	}
	if c.Cwnd() <= initialCwnd {
		t.Fatalf("cwnd = %d never grew beyond initial %d", c.Cwnd(), initialCwnd)
	}
}

func TestSlowStartPacesTransfer(t *testing.T) {
	// With RTT ~ 20ms and IW4, 64 segments need ~4 slow-start rounds
	// (4+8+16+32=60, then the rest): the transfer must take multiple
	// RTTs, not complete in one burst.
	sim := eventsim.New(22)
	client, server := pair(t, sim, 5*time.Millisecond)
	var doneAt time.Duration
	want := 64 * MSS
	got := 0
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) {
			got += len(b)
			if got >= want {
				doneAt = sim.Now()
			}
		}
	})
	c, _ := client.Dial(ipB, 80)
	var start time.Duration
	c.OnEstablished = func() {
		start = sim.Now()
		c.Send(make([]byte, want))
	}
	sim.RunUntil(time.Minute)
	if got != want {
		t.Fatalf("delivered %d of %d", got, want)
	}
	elapsed := doneAt - start
	rtt := 20 * time.Millisecond
	if elapsed < 3*rtt {
		t.Fatalf("64-segment transfer finished in %v (<3 RTT): no pacing", elapsed)
	}
	if elapsed > 10*rtt {
		t.Fatalf("transfer took %v (>10 RTT): window not growing", elapsed)
	}
}

func TestRTOShrinksWindow(t *testing.T) {
	sim := eventsim.New(23)
	client, server := pair(t, sim, time.Millisecond)
	server.Listen(80, func(c *Conn) {
		c.OnData = func([]byte) {}
	})
	// Drop a mid-transfer data segment to force an RTO.
	sent := 0
	client.DropTx = func() bool {
		sent++
		return sent == 5 // one of the first data segments
	}
	c, _ := client.Dial(ipB, 80)
	c.OnEstablished = func() { c.Send(make([]byte, 16*MSS)) }

	// Run until the retransmission happened.
	sim.RunUntil(10 * time.Second)
	if client.SegmentsRetransmitted == 0 {
		t.Fatal("no RTO occurred")
	}
	// After multiplicative decrease the window restarts low and regrows;
	// it must never end below MSS.
	if c.Cwnd() < MSS {
		t.Fatalf("cwnd = %d below one MSS", c.Cwnd())
	}
}

func TestFinWaitsForQueuedData(t *testing.T) {
	// Close immediately after a large Send: the FIN occupies sequence
	// space after all data, so the peer must receive every byte before
	// the connection closes.
	sim := eventsim.New(24)
	client, server := pair(t, sim, 2*time.Millisecond)
	var got []byte
	serverClosed := false
	want := 32 * MSS
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) {
			got = append(got, b...)
			if len(got) >= want {
				c.Close() // app closes its half once everything arrived
			}
		}
		c.OnClose = func() { serverClosed = true }
	})
	payload := make([]byte, 32*MSS)
	for i := range payload {
		payload[i] = byte(i)
	}
	c, _ := client.Dial(ipB, 80)
	clientClosed := false
	c.OnClose = func() { clientClosed = true }
	c.OnEstablished = func() {
		c.Send(payload)
		c.Close() // FIN queued behind 32 segments
	}
	sim.RunUntil(time.Minute)
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered %d of %d bytes before FIN", len(got), len(payload))
	}
	if !clientClosed || !serverClosed {
		t.Fatalf("closed: client=%v server=%v", clientClosed, serverClosed)
	}
}

func TestCwndBypassForHandshake(t *testing.T) {
	// SYN and SYN-ACK must go out regardless of window state.
	sim := eventsim.New(25)
	client, server := pair(t, sim, time.Millisecond)
	established := false
	server.Listen(80, func(*Conn) {})
	c, _ := client.Dial(ipB, 80)
	c.OnEstablished = func() { established = true }
	sim.RunUntil(time.Second)
	if !established {
		t.Fatal("handshake blocked")
	}
}

func TestFastRetransmitOnDupAcks(t *testing.T) {
	// Drop one data segment in the middle of a multi-segment burst: the
	// later segments generate duplicate ACKs and the sender must recover
	// via fast retransmit, well before the 200 ms RTO.
	sim := eventsim.New(26)
	client, server := pair(t, sim, time.Millisecond) // RTT ~4ms
	var got int
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) { got += len(b) }
	})
	sent := 0
	client.DropTx = func() bool {
		sent++
		return sent == 4 // handshake SYN=1, ACK=2, data1=3, drop data2=4
	}
	want := 8 * MSS
	c, _ := client.Dial(ipB, 80)
	var start, done time.Duration
	c.OnEstablished = func() {
		start = sim.Now()
		c.Send(make([]byte, want))
	}
	sim.RunUntil(30 * time.Second)
	if got != want {
		t.Fatalf("delivered %d of %d", got, want)
	}
	_ = done
	if client.FastRetransmits == 0 {
		t.Fatal("loss recovered without fast retransmit")
	}
	// Recovery must not have needed the 200ms RTO: total transfer well
	// under RTO + transfer time.
	if elapsed := sim.Now() - start; elapsed > 150*time.Millisecond {
		t.Fatalf("transfer took %v, fast retransmit should beat the RTO", elapsed)
	}
}

func TestNoSpuriousFastRetransmit(t *testing.T) {
	// A clean transfer must not trigger fast retransmits.
	sim := eventsim.New(27)
	client, server := pair(t, sim, time.Millisecond)
	server.Listen(80, func(c *Conn) { c.OnData = func([]byte) {} })
	c, _ := client.Dial(ipB, 80)
	c.OnEstablished = func() { c.Send(make([]byte, 16*MSS)) }
	sim.RunUntil(30 * time.Second)
	if client.FastRetransmits != 0 {
		t.Fatalf("spurious fast retransmits: %d", client.FastRetransmits)
	}
}
