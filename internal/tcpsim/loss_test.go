package tcpsim

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/netsim"
)

// lossyPair joins two stacks over a single link with the given loss rate.
func lossyPair(t testing.TB, sim *eventsim.Simulator, loss float64) (*Stack, *Stack, *netsim.Link) {
	t.Helper()
	nicA := netsim.NewNIC(sim, "a", macA, ipA)
	nicB := netsim.NewNIC(sim, "b", macB, ipB)
	link := netsim.NewLink(sim, 100_000_000, 10*time.Microsecond)
	link.LossRate = loss
	nicA.Connect(link)
	nicB.Connect(link)
	table := map[netip.Addr]netsim.MAC{ipA: macA, ipB: macB}
	resolve := func(a netip.Addr) (netsim.MAC, bool) { m, ok := table[a]; return m, ok }
	sa, sb := NewStack(sim, nicA), NewStack(sim, nicB)
	sa.Resolve, sb.Resolve = resolve, resolve
	return sa, sb, link
}

func TestReliableTransferUnderLoss(t *testing.T) {
	// 10% random frame loss: the retransmission machinery must still
	// deliver every byte in order.
	totalDropped := 0
	for _, seed := range []int64{1, 2, 3} {
		sim := eventsim.New(seed)
		client, server, link := lossyPair(t, sim, 0.10)

		payload := make([]byte, 8*MSS)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		var got []byte
		server.Listen(80, func(c *Conn) {
			c.OnData = func(b []byte) { got = append(got, b...) }
		})
		c, _ := client.Dial(ipB, 80)
		c.OnEstablished = func() { c.Send(payload) }
		sim.RunUntil(2 * time.Minute)

		if !bytes.Equal(got, payload) {
			t.Fatalf("seed %d: delivered %d/%d bytes intact=%v (link dropped %d)",
				seed, len(got), len(payload), bytes.Equal(got, payload), link.Dropped)
		}
		totalDropped += link.Dropped
		// A single dropped frame can be a pure ACK that a later cumulative
		// ACK covers without any retransmission; only several drops make
		// retransmissions inevitable.
		if link.Dropped >= 3 && client.SegmentsRetransmitted == 0 && server.SegmentsRetransmitted == 0 {
			t.Fatalf("seed %d: no retransmissions despite %d drops", seed, link.Dropped)
		}
	}
	if totalDropped == 0 {
		t.Fatal("loss injection inactive across all seeds")
	}
}

func TestHandshakeSurvivesSYNLoss(t *testing.T) {
	// Drop the very first transmission (the SYN) at the stack level; the
	// RTO must re-send it and the connection still establishes.
	sim := eventsim.New(4)
	client, server := pair(t, sim, 10*time.Microsecond)
	sent := 0
	client.DropTx = func() bool {
		sent++
		return sent == 1 // lose the first SYN only
	}
	established := false
	server.Listen(80, func(*Conn) {})
	c, _ := client.Dial(ipB, 80)
	c.OnEstablished = func() { established = true }
	sim.RunUntil(10 * time.Second)
	if !established {
		t.Fatal("handshake never recovered from SYN loss")
	}
	if client.SegmentsRetransmitted != 1 {
		t.Fatalf("retransmissions = %d, want 1", client.SegmentsRetransmitted)
	}
}

func TestExtremeLossEventuallyAborts(t *testing.T) {
	// A wire that eats everything: the sender must give up (RST/teardown)
	// rather than retransmit forever.
	sim := eventsim.New(5)
	client, _, _ := lossyPair(t, sim, 1.0)
	closed := false
	c, _ := client.Dial(ipB, 80)
	c.OnClose = func() { closed = true }
	sim.RunUntil(5 * time.Minute)
	if !closed {
		t.Fatalf("connection still alive on a dead wire (state %v)", c.State())
	}
}

func TestLossDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int {
		sim := eventsim.New(seed)
		client, server, link := lossyPair(t, sim, 0.2)
		server.Listen(80, func(c *Conn) {
			c.OnData = func(b []byte) { c.Send(b) }
		})
		c, _ := client.Dial(ipB, 80)
		c.OnEstablished = func() { c.Send(make([]byte, 4*MSS)) }
		sim.RunUntil(time.Minute)
		return link.Dropped
	}
	if run(42) != run(42) {
		t.Fatal("loss pattern not deterministic for a fixed seed")
	}
}
