// Package tcpsim implements a from-scratch TCP over the netsim substrate:
// three-way handshake, sequence/acknowledgement accounting, in-order
// delivery with out-of-order buffering, FIN teardown, RST on unexpected
// segments, timeout-based retransmission with exponential backoff, fast
// retransmit on three duplicate ACKs, and slow-start/congestion-avoidance
// window management.
//
// Everything runs on the eventsim virtual clock with a callback API (no
// goroutines), so testbed runs are deterministic. The handshake cost this
// stack models is exactly the mechanism behind the paper's Table 3: a
// measurement method that opens a fresh connection absorbs a full RTT of
// handshake into its reported delay.
package tcpsim

import (
	"fmt"
	"net/netip"
	"time"

	"github.com/browsermetric/browsermetric/internal/arena"
	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/netsim"
	"github.com/browsermetric/browsermetric/internal/obs"
)

// MSS is the maximum segment payload this stack sends.
const MSS = 1460

// defaultRTO is the initial retransmission timeout.
const defaultRTO = 200 * time.Millisecond

// initialCwnd is the initial congestion window (IW4, RFC 3390-era).
const initialCwnd = 4 * MSS

// initialSsthresh effectively starts connections in slow start.
const initialSsthresh = 1 << 20

// State is a TCP connection state.
type State int

// Connection states (the subset this stack distinguishes).
const (
	StateClosed State = iota
	StateSynSent
	StateSynReceived
	StateEstablished
	StateFinWait   // we sent FIN, waiting for its ACK / peer FIN
	StateCloseWait // peer sent FIN, we have not closed yet
	StateLastAck   // peer closed first, we sent our FIN
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "CLOSED"
	case StateSynSent:
		return "SYN_SENT"
	case StateSynReceived:
		return "SYN_RCVD"
	case StateEstablished:
		return "ESTABLISHED"
	case StateFinWait:
		return "FIN_WAIT"
	case StateCloseWait:
		return "CLOSE_WAIT"
	case StateLastAck:
		return "LAST_ACK"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

type fourTuple struct {
	localPort, remotePort uint16
	remote                netip.Addr
}

// Stack is a host TCP/UDP stack bound to one NIC.
type Stack struct {
	sim *eventsim.Simulator
	nic *netsim.NIC

	// Resolve maps an IPv4 address to a MAC (static ARP). The testbed
	// installs a table covering its two hosts.
	Resolve func(netip.Addr) (netsim.MAC, bool)

	// DropTx, when non-nil, is consulted for every outgoing segment; a
	// true return drops it before it reaches the wire (but after capture
	// taps would see nothing — the drop models NIC/driver loss). Used for
	// failure injection in tests.
	DropTx func() bool

	listeners   map[uint16]*Listener
	conns       map[fourTuple]*Conn
	udpHandlers map[uint16]func(src netip.Addr, srcPort uint16, payload []byte)

	nextEphemeral uint16
	ipID          uint16

	// SegmentsSent / SegmentsRetransmitted / FastRetransmits count for
	// diagnostics.
	SegmentsSent          int
	SegmentsRetransmitted int
	FastRetransmits       int

	// Trace records a "connect" span per outbound handshake; Metrics
	// counts segments, bytes and retransmits. Both may be nil (no-op).
	Trace   *obs.Tracer
	Metrics *obs.Metrics

	// Arena, when non-nil, supplies frame bytes for outgoing segments and
	// datagrams. Frames then live until the arena's next Reset, which the
	// testbed performs only between runs — after every in-flight frame is
	// dead. Nil means plain heap frames.
	Arena *arena.Arena

	// rxPkt is scratch decode storage for the inbound frame handler.
	// Safe because all frame delivery is event-scheduled, never reentrant.
	rxPkt netsim.Packet

	// connSlab is a grow-only chunk of connection records handed out by
	// newConn. A Conn's queue slices alias its own inline arrays, so a
	// chunk is never grown or compacted in place — when exhausted it is
	// simply abandoned for a fresh one. Conns are not recycled within a
	// cell; the chunks amortize their allocation across runs.
	connSlab []Conn
	connOff  int
}

// NewStack creates a stack and installs itself as the NIC frame handler.
func NewStack(sim *eventsim.Simulator, nic *netsim.NIC) *Stack {
	s := &Stack{
		sim:           sim,
		nic:           nic,
		listeners:     make(map[uint16]*Listener),
		conns:         make(map[fourTuple]*Conn),
		udpHandlers:   make(map[uint16]func(netip.Addr, uint16, []byte)),
		nextEphemeral: 49152,
	}
	nic.SetHandler(s.receive)
	return s
}

// Addr returns the stack's IPv4 address.
func (s *Stack) Addr() netip.Addr { return s.nic.Addr }

// Listener accepts inbound connections on a port.
type Listener struct {
	Port   uint16
	Accept func(*Conn) // invoked when a connection reaches ESTABLISHED
}

// Listen starts accepting TCP connections on port. accept is invoked for
// each connection that completes the handshake.
func (s *Stack) Listen(port uint16, accept func(*Conn)) (*Listener, error) {
	if _, busy := s.listeners[port]; busy {
		return nil, fmt.Errorf("tcpsim: port %d already listening", port)
	}
	l := &Listener{Port: port, Accept: accept}
	s.listeners[port] = l
	return l, nil
}

// CloseListener stops accepting on port.
func (s *Stack) CloseListener(port uint16) { delete(s.listeners, port) }

// Conn is one TCP connection endpoint.
type Conn struct {
	stack *Stack
	tuple fourTuple
	state State

	// Sender side. Sequence space: sndUna (oldest unacked) <= sndTx
	// (next to transmit) <= sndNxt (next to assign). Segments wait in
	// sendQ until the congestion window admits them, then move to retxQ
	// until acknowledged.
	sndUna, sndTx, sndNxt uint32
	sendQ                 []segment
	retxQ                 []segment
	// Inline backing for the two queues: probe-style connections never
	// hold more than a few segments, so seeding the slices from these
	// arrays (see initQueues) makes their steady state allocation-free.
	sendBuf  [4]segment
	retxBuf  [4]segment
	rto      time.Duration
	rtoTimer eventsim.Event
	// Congestion control: classic slow start / congestion avoidance.
	cwnd     int // bytes
	ssthresh int // bytes
	dupAcks  int // consecutive duplicate ACKs for sndUna

	// Receiver side.
	rcvNxt      uint32
	oo          map[uint32][]byte // out-of-order segments by seq
	peerFinSeq  uint32
	peerFinSet  bool
	peerFinDone bool

	acceptCb func(*Conn) // listener accept callback, fired once

	// Callbacks. All optional.
	OnEstablished func()
	OnData        func([]byte)
	OnClose       func() // fires once when the connection fully closes
	OnReset       func() // peer sent RST

	// Sink, when non-nil, receives inbound data instead of OnData. One
	// long-lived sink shared by every connection of a service replaces a
	// per-conn OnData closure, which is what keeps accepting a connection
	// allocation-free. Upper is sink-owned per-conn state (e.g. the
	// httpsim server conn wrapping this transport conn).
	Sink  DataSink
	Upper any

	// connectSpan covers Dial → ESTABLISHED on the active opener.
	connectSpan *obs.Span

	closed bool
}

// DataSink receives a connection's inbound in-order data. It is the
// closure-free alternative to Conn.OnData: a service installs one sink for
// all its connections and keys per-conn state off the *Conn (usually via
// Conn.Upper).
type DataSink interface {
	ConnData(c *Conn, b []byte)
}

// deliver hands in-order payload to the connection's consumer.
func (c *Conn) deliver(b []byte) {
	if c.Sink != nil {
		c.Sink.ConnData(c, b)
		return
	}
	if c.OnData != nil {
		c.OnData(b)
	}
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// LocalPort returns the connection's local port.
func (c *Conn) LocalPort() uint16 { return c.tuple.localPort }

// RemotePort returns the connection's remote port.
func (c *Conn) RemotePort() uint16 { return c.tuple.remotePort }

// Remote returns the peer address.
func (c *Conn) Remote() netip.Addr { return c.tuple.remote }

type segment struct {
	seq     uint32
	flags   byte
	payload []byte
	sentAt  time.Duration
}

// seqLen is the sequence-number space a segment occupies.
func (g segment) seqLen() uint32 {
	n := uint32(len(g.payload))
	if g.flags&(netsim.FlagSYN|netsim.FlagFIN) != 0 {
		n++
	}
	return n
}

// seqLE reports a <= b in mod-2^32 arithmetic.
func seqLE(a, b uint32) bool { return int32(b-a) >= 0 }

// seqLT reports a < b in mod-2^32 arithmetic.
func seqLT(a, b uint32) bool { return int32(b-a) > 0 }

// connChunkSize is how many Conn records a slab chunk holds. Probe
// workloads open a handful of connections per run, so one chunk covers
// several runs.
const connChunkSize = 32

// newConn hands out a zeroed connection record from the stack's slab
// chunk. An exhausted chunk is abandoned (its conns still own their
// inline queue arrays and must never move), and a fresh one allocated —
// one allocation per 32 connections instead of one each.
func (s *Stack) newConn() *Conn {
	if s.connOff >= len(s.connSlab) {
		s.connSlab = make([]Conn, connChunkSize)
		s.connOff = 0
	}
	c := &s.connSlab[s.connOff]
	s.connOff++
	return c
}

// Dial opens a connection to dst:port. The returned Conn is in SYN_SENT;
// OnEstablished fires when the handshake completes.
func (s *Stack) Dial(dst netip.Addr, port uint16) (*Conn, error) {
	local := s.allocEphemeral()
	tuple := fourTuple{localPort: local, remotePort: port, remote: dst}
	isn := uint32(s.sim.Rand().Int63())
	c := s.newConn()
	c.stack = s
	c.tuple = tuple
	c.state = StateSynSent
	c.sndUna, c.sndTx, c.sndNxt = isn, isn, isn
	c.rto = defaultRTO
	c.cwnd = initialCwnd
	c.ssthresh = initialSsthresh
	c.initQueues()
	s.conns[tuple] = c
	c.connectSpan = s.Trace.Begin("connect").Int("dst_port", int64(port)).Int("local_port", int64(local))
	c.enqueue(netsim.FlagSYN, nil)
	return c, nil
}

// Quiescent reports whether no connection on the stack holds transport
// state that references in-flight buffers: everything sent is acked,
// nothing waits in a send queue, and no out-of-order segment is parked.
// It is the safety predicate for resetting an arena the stack draws
// frames and segment payloads from — a non-quiescent conn could still
// retransmit (or deliver) bytes the reset would recycle.
func (s *Stack) Quiescent() bool {
	for _, c := range s.conns {
		if c.sndUna != c.sndNxt || len(c.sendQ) > 0 || len(c.retxQ) > 0 || len(c.oo) > 0 {
			return false
		}
	}
	return true
}

// Tracer returns the stack's tracer (possibly nil) so higher layers
// built on a Conn — like wssim — can record their own spans.
func (c *Conn) Tracer() *obs.Tracer { return c.stack.Trace }

// Metrics returns the stack's metrics registry (possibly nil).
func (c *Conn) Metrics() *obs.Metrics { return c.stack.Metrics }

// Arena returns the stack's arena (possibly nil) so higher layers can
// draw their message buffers from the same per-run epoch.
func (c *Conn) Arena() *arena.Arena { return c.stack.Arena }

func (s *Stack) allocEphemeral() uint16 {
	for i := 0; i < 1<<14; i++ {
		p := s.nextEphemeral
		s.nextEphemeral++
		if s.nextEphemeral < 49152 {
			s.nextEphemeral = 49152
		}
		busy := false
		for t := range s.conns {
			if t.localPort == p {
				busy = true
				break
			}
		}
		if !busy {
			return p
		}
	}
	panic("tcpsim: ephemeral port space exhausted")
}

// Send queues application payload for in-order, reliable delivery.
// It may be called once the connection is established (or from the
// OnEstablished callback). Payload is segmented by MSS.
func (c *Conn) Send(payload []byte) error {
	if c.state != StateEstablished && c.state != StateCloseWait {
		return fmt.Errorf("tcpsim: send in state %v", c.state)
	}
	for len(payload) > 0 {
		n := len(payload)
		if n > MSS {
			n = MSS
		}
		c.enqueue(netsim.FlagPSH|netsim.FlagACK, payload[:n])
		payload = payload[n:]
	}
	return nil
}

// Close initiates an orderly shutdown by sending FIN.
func (c *Conn) Close() {
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait
		c.enqueue(netsim.FlagFIN|netsim.FlagACK, nil) // FIN queues after pending data
	case StateCloseWait:
		c.state = StateLastAck
		c.enqueue(netsim.FlagFIN|netsim.FlagACK, nil)
	case StateClosed:
		// already closed
	default:
		// Closing mid-handshake: just abort.
		c.abort()
	}
}

// Abort sends RST and drops the connection immediately.
func (c *Conn) Abort() {
	c.rawSend(netsim.FlagRST|netsim.FlagACK, c.sndNxt, c.rcvNxt, nil)
	c.abort()
}

func (c *Conn) abort() {
	c.teardown()
}

func (c *Conn) teardown() {
	if c.closed {
		return
	}
	c.closed = true
	c.state = StateClosed
	c.rtoTimer.Cancel() // no-op on the zero handle or a fired timer
	c.rtoTimer = eventsim.Event{}
	delete(c.stack.conns, c.tuple)
	if c.OnClose != nil {
		c.OnClose()
	}
}

// initQueues seeds sendQ and retxQ from the connection's inline arrays so
// short-lived connections never heap-allocate queue storage.
func (c *Conn) initQueues() {
	c.sendQ = c.sendBuf[:0]
	c.retxQ = c.retxBuf[:0]
}

// enqueue assigns sequence space to a segment and lets the congestion
// window decide when it reaches the wire.
func (c *Conn) enqueue(flags byte, payload []byte) {
	seg := segment{seq: c.sndNxt, flags: flags, payload: payload}
	c.sndNxt += seg.seqLen()
	c.sendQ = append(c.sendQ, seg)
	c.pump()
}

// inflight is the unacknowledged byte count on the wire.
func (c *Conn) inflight() int { return int(c.sndTx - c.sndUna) }

// pump transmits queued segments while the congestion window allows.
// Handshake segments (SYN, SYN-ACK) bypass the window; everything else —
// including the FIN — honors it.
func (c *Conn) pump() {
	sent, full := 0, false
	for sent < len(c.sendQ) {
		seg := c.sendQ[sent]
		bypass := seg.flags&netsim.FlagSYN != 0
		if !bypass && c.inflight()+int(seg.seqLen()) > c.cwnd && c.inflight() > 0 {
			full = true
			break
		}
		sent++
		seg.sentAt = c.stack.sim.Now()
		c.sndTx = seg.seq + seg.seqLen()
		c.retxQ = append(c.retxQ, seg)
		c.transmit(seg)
	}
	if sent > 0 {
		// Compact instead of re-slicing so the queue keeps its backing
		// array; popping via sendQ[1:] would strand the capacity and force
		// every subsequent enqueue to reallocate.
		n := copy(c.sendQ, c.sendQ[sent:])
		tail := c.sendQ[n:]
		for i := range tail {
			tail[i] = segment{} // release payload references
		}
		c.sendQ = c.sendQ[:n]
	}
	if full {
		return // window full; ACKs will reopen it (RTO stays as armed)
	}
	c.armRTO()
}

// transmit puts a tracked segment on the wire.
func (c *Conn) transmit(seg segment) {
	ackFlag := seg.flags
	ack := uint32(0)
	if ackFlag&netsim.FlagACK != 0 {
		ack = c.rcvNxt
	}
	c.rawSend(ackFlag, seg.seq, ack, seg.payload)
}

// rawSend emits one TCP segment without retransmission tracking.
func (c *Conn) rawSend(flags byte, seq, ack uint32, payload []byte) {
	s := c.stack
	s.SegmentsSent++
	if s.DropTx != nil && s.DropTx() {
		return
	}
	mac, ok := s.resolveMAC(c.tuple.remote)
	if !ok {
		return
	}
	s.ipID++
	hdr := &netsim.TCP{
		SrcPort: c.tuple.localPort,
		DstPort: c.tuple.remotePort,
		Seq:     seq,
		Ack:     ack,
		Flags:   flags,
	}
	frame := netsim.BuildTCPArena(s.Arena, s.nic.MAC, mac, s.nic.Addr, c.tuple.remote, s.ipID, hdr, payload)
	s.Metrics.Add("tcp_segments_sent", 1)
	s.Metrics.Add("tcp_bytes_sent", int64(len(frame)))
	s.nic.Send(frame)
}

func (s *Stack) resolveMAC(a netip.Addr) (netsim.MAC, bool) {
	if s.Resolve == nil {
		return netsim.Broadcast, true
	}
	return s.Resolve(a)
}

func (c *Conn) armRTO() {
	c.rtoTimer.Cancel() // no-op if unset or already fired
	if len(c.retxQ) == 0 {
		c.rtoTimer = eventsim.Event{}
		return
	}
	c.rtoTimer = c.stack.sim.ScheduleAny(c.rto, onRTOAny, c)
}

// Cwnd exposes the current congestion window (bytes) for tests and
// diagnostics.
func (c *Conn) Cwnd() int { return c.cwnd }

// onRTOAny adapts onRTO for eventsim.ScheduleAny: one shared func(any)
// instead of a per-connection method value, which would allocate.
func onRTOAny(v any) { v.(*Conn).onRTO() }

func (c *Conn) onRTO() {
	if len(c.retxQ) == 0 || c.closed {
		return
	}
	c.stack.SegmentsRetransmitted++
	c.stack.Metrics.Add("tcp_retransmits", 1)
	c.rto *= 2
	if c.rto > 8*time.Second {
		// Too many losses: give up, as a real stack eventually would.
		c.Abort()
		return
	}
	// Multiplicative decrease: halve the flight into ssthresh, restart
	// from one segment.
	half := c.inflight() / 2
	if half < 2*MSS {
		half = 2 * MSS
	}
	c.ssthresh = half
	c.cwnd = MSS
	c.transmit(c.retxQ[0])
	c.armRTO()
}

// fastRetransmit resends the oldest unacked segment and halves the
// congestion window (simplified fast recovery).
func (c *Conn) fastRetransmit() {
	if len(c.retxQ) == 0 || c.closed {
		return
	}
	c.stack.SegmentsRetransmitted++
	c.stack.FastRetransmits++
	c.stack.Metrics.Add("tcp_retransmits", 1)
	c.stack.Metrics.Add("tcp_fast_retransmits", 1)
	half := c.inflight() / 2
	if half < 2*MSS {
		half = 2 * MSS
	}
	c.ssthresh = half
	c.cwnd = c.ssthresh
	c.transmit(c.retxQ[0])
	c.armRTO()
}

// receive is the NIC inbound frame handler.
func (s *Stack) receive(frame []byte) {
	p := &s.rxPkt
	err := p.Parse(frame, s.sim.Now())
	if err != nil || p.IP == nil || p.IP.Dst != s.nic.Addr {
		return
	}
	switch {
	case p.TCP != nil:
		s.receiveTCP(p)
	case p.UDP != nil:
		if h, ok := s.udpHandlers[p.UDP.DstPort]; ok {
			h(p.IP.Src, p.UDP.SrcPort, p.Payload)
		}
	}
}

func (s *Stack) receiveTCP(p *netsim.Packet) {
	tuple := fourTuple{localPort: p.TCP.DstPort, remotePort: p.TCP.SrcPort, remote: p.IP.Src}
	if c, ok := s.conns[tuple]; ok {
		c.handle(p)
		return
	}
	// No connection: maybe a listener can take a SYN.
	if p.TCP.Flags&netsim.FlagSYN != 0 && p.TCP.Flags&netsim.FlagACK == 0 {
		if l, ok := s.listeners[p.TCP.DstPort]; ok {
			s.acceptSyn(l, tuple, p)
			return
		}
	}
	// Otherwise RST anything that is not itself a RST.
	if p.TCP.Flags&netsim.FlagRST == 0 {
		s.sendRST(tuple, p)
	}
}

func (s *Stack) sendRST(tuple fourTuple, p *netsim.Packet) {
	mac, ok := s.resolveMAC(tuple.remote)
	if !ok {
		return
	}
	s.ipID++
	hdr := &netsim.TCP{
		SrcPort: tuple.localPort,
		DstPort: tuple.remotePort,
		Seq:     p.TCP.Ack,
		Ack:     p.TCP.Seq + 1,
		Flags:   netsim.FlagRST | netsim.FlagACK,
	}
	s.nic.Send(netsim.BuildTCPArena(s.Arena, s.nic.MAC, mac, s.nic.Addr, tuple.remote, s.ipID, hdr, nil))
}

func (s *Stack) acceptSyn(l *Listener, tuple fourTuple, p *netsim.Packet) {
	isn := uint32(s.sim.Rand().Int63())
	c := s.newConn()
	c.stack = s
	c.tuple = tuple
	c.state = StateSynReceived
	c.sndUna, c.sndTx, c.sndNxt = isn, isn, isn
	c.rcvNxt = p.TCP.Seq + 1
	c.rto = defaultRTO
	c.cwnd = initialCwnd
	c.ssthresh = initialSsthresh
	c.initQueues()
	s.conns[tuple] = c
	c.acceptCb = l.Accept
	c.enqueue(netsim.FlagSYN|netsim.FlagACK, nil)
}

// handle processes one inbound segment for an existing connection.
func (c *Conn) handle(p *netsim.Packet) {
	t := p.TCP
	if t.Flags&netsim.FlagRST != 0 {
		if c.OnReset != nil {
			c.OnReset()
		}
		c.teardown()
		return
	}

	// Process ACK field.
	if t.Flags&netsim.FlagACK != 0 {
		c.processAck(t.Ack)
	}

	switch c.state {
	case StateSynSent:
		if t.Flags&netsim.FlagSYN != 0 && t.Flags&netsim.FlagACK != 0 {
			c.rcvNxt = t.Seq + 1
			c.state = StateEstablished
			c.connectSpan.Done()
			c.sendAck()
			if c.OnEstablished != nil {
				c.OnEstablished()
			}
		}
		return
	case StateSynReceived:
		if t.Flags&netsim.FlagACK != 0 && seqLE(c.sndUna, t.Ack) {
			c.state = StateEstablished
			if c.acceptCb != nil {
				cb := c.acceptCb
				c.acceptCb = nil
				cb(c)
				if c.OnEstablished != nil {
					c.OnEstablished()
				}
			}
			// Fall through: the ACK completing the handshake may carry data.
		}
	}

	// Data and FIN processing for synchronized states.
	before := c.rcvNxt
	delivered := false
	if len(p.Payload) > 0 {
		delivered = c.ingestData(t.Seq, p.Payload)
	}
	if t.Flags&netsim.FlagFIN != 0 {
		finSeq := t.Seq + uint32(len(p.Payload))
		c.peerFinSeq, c.peerFinSet = finSeq, true
	}
	c.drainInOrder(delivered)
	if len(p.Payload) > 0 && c.rcvNxt == before && !c.closed {
		// Out-of-order (or stale) data: duplicate ACK so the sender's
		// fast-retransmit logic can kick in.
		c.sendAck()
	}
}

func (c *Conn) processAck(ack uint32) {
	if !seqLT(c.sndUna, ack) || !seqLE(ack, c.sndNxt) {
		// Not an advancing ACK. A duplicate ACK for sndUna while data is
		// outstanding hints at loss; the third one triggers fast
		// retransmit (RFC 5681) without waiting for the RTO.
		if ack == c.sndUna && len(c.retxQ) > 0 {
			c.dupAcks++
			if c.dupAcks == 3 {
				c.fastRetransmit()
			}
		}
		return
	}
	c.dupAcks = 0
	acked := int(ack - c.sndUna)
	c.sndUna = ack
	if seqLT(c.sndTx, ack) {
		c.sndTx = ack
	}
	// Congestion window growth: exponential in slow start, ~MSS/RTT in
	// congestion avoidance.
	if c.cwnd < c.ssthresh {
		c.cwnd += acked
	} else {
		c.cwnd += MSS * MSS / c.cwnd
	}
	// Drop fully acknowledged segments; reset RTO backoff on progress.
	q := c.retxQ[:0]
	for _, seg := range c.retxQ {
		if seqLT(ack, seg.seq+seg.seqLen()) {
			q = append(q, seg)
		}
	}
	c.retxQ = q
	c.rto = defaultRTO
	c.pump() // also re-arms the RTO
	if len(c.retxQ) == 0 && len(c.sendQ) == 0 {
		switch c.state {
		case StateFinWait:
			// Our FIN is acked. If the peer's FIN was already consumed we
			// are fully closed; otherwise wait for it.
			if c.peerFinConsumed() {
				c.teardown()
			}
		case StateLastAck:
			c.teardown()
		}
	}
}

// ingestData accepts one data segment and reports whether rcvNxt advanced.
// In-order data — the overwhelmingly common case on the simulator's
// loss-free paths — is handed to OnData directly: frames are immutable
// once transmitted (see netsim.NIC.Send), so no defensive copy is needed
// and the reassembly map is never touched. Only reordered segments are
// copied and staged for drainInOrder.
func (c *Conn) ingestData(seq uint32, payload []byte) bool {
	if seqLE(seq+uint32(len(payload)), c.rcvNxt) {
		return false // entirely old: retransmission of delivered data
	}
	if seq == c.rcvNxt && len(c.oo) == 0 {
		c.rcvNxt += uint32(len(payload))
		c.deliver(payload)
		return true
	}
	if c.oo == nil {
		c.oo = make(map[uint32][]byte, 4) // lazy: most conns never reorder
	}
	if _, dup := c.oo[seq]; !dup {
		// The copy lives at most until the run ends (either drained and
		// delivered, or dead with its connection), so arena storage is safe.
		buf := c.stack.Arena.Bytes(len(payload))
		copy(buf, payload)
		c.oo[seq] = buf
	}
	return false
}

// drainInOrder delivers contiguous data, processes a pending peer FIN and
// acknowledges whatever advanced rcvNxt. advanced carries whether the
// caller already advanced rcvNxt (ingestData's in-order fast path), so a
// single ACK covers direct delivery, reassembled data and the FIN alike.
func (c *Conn) drainInOrder(advanced bool) {
	for {
		if data, ok := c.oo[c.rcvNxt]; ok {
			delete(c.oo, c.rcvNxt)
			c.rcvNxt += uint32(len(data))
			advanced = true
			c.deliver(data)
			continue
		}
		break
	}
	if c.peerFinSet && c.rcvNxt == c.peerFinSeq {
		c.rcvNxt = c.peerFinSeq + 1
		c.peerFinSet = false
		c.peerFinDone = true
		advanced = true
		switch c.state {
		case StateEstablished:
			c.state = StateCloseWait
		case StateFinWait:
			if len(c.retxQ) == 0 {
				c.sendAck()
				c.teardown()
				return
			}
		}
	}
	if advanced {
		c.sendAck()
	}
}

func (c *Conn) peerFinConsumed() bool { return c.peerFinDone }

func (c *Conn) sendAck() {
	c.rawSend(netsim.FlagACK, c.sndNxt, c.rcvNxt, nil)
}

// ListenUDP registers a handler for datagrams arriving on port.
func (s *Stack) ListenUDP(port uint16, h func(src netip.Addr, srcPort uint16, payload []byte)) error {
	if _, busy := s.udpHandlers[port]; busy {
		return fmt.Errorf("tcpsim: udp port %d already bound", port)
	}
	s.udpHandlers[port] = h
	return nil
}

// CloseUDP releases a UDP port bound with ListenUDP.
func (s *Stack) CloseUDP(port uint16) { delete(s.udpHandlers, port) }

// SendUDP emits a single datagram.
func (s *Stack) SendUDP(dst netip.Addr, srcPort, dstPort uint16, payload []byte) {
	mac, ok := s.resolveMAC(dst)
	if !ok {
		return
	}
	s.ipID++
	hdr := &netsim.UDP{SrcPort: srcPort, DstPort: dstPort}
	s.nic.Send(netsim.BuildUDPArena(s.Arena, s.nic.MAC, mac, s.nic.Addr, dst, s.ipID, hdr, payload))
}
