package tcpsim

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/netsim"
)

var (
	macA = netsim.MAC{0x02, 0, 0, 0, 0, 0x0a}
	macB = netsim.MAC{0x02, 0, 0, 0, 0, 0x0b}
	ipA  = netip.MustParseAddr("192.168.1.10")
	ipB  = netip.MustParseAddr("192.168.1.20")
)

// pair builds two stacks joined by a switch over 100 Mbps links.
func pair(t testing.TB, sim *eventsim.Simulator, prop time.Duration) (*Stack, *Stack) {
	t.Helper()
	nicA := netsim.NewNIC(sim, "a", macA, ipA)
	nicB := netsim.NewNIC(sim, "b", macB, ipB)
	sw := netsim.NewSwitch(sim, 2*time.Microsecond)
	la := netsim.NewLink(sim, 100_000_000, prop)
	lb := netsim.NewLink(sim, 100_000_000, prop)
	nicA.Connect(la)
	sw.Connect(la)
	nicB.Connect(lb)
	sw.Connect(lb)
	table := map[netip.Addr]netsim.MAC{ipA: macA, ipB: macB}
	resolve := func(a netip.Addr) (netsim.MAC, bool) { m, ok := table[a]; return m, ok }
	sa := NewStack(sim, nicA)
	sb := NewStack(sim, nicB)
	sa.Resolve = resolve
	sb.Resolve = resolve
	return sa, sb
}

func TestHandshake(t *testing.T) {
	sim := eventsim.New(1)
	client, server := pair(t, sim, 100*time.Microsecond)

	var serverConn *Conn
	if _, err := server.Listen(80, func(c *Conn) { serverConn = c }); err != nil {
		t.Fatal(err)
	}
	established := false
	c, err := client.Dial(ipB, 80)
	if err != nil {
		t.Fatal(err)
	}
	c.OnEstablished = func() { established = true }
	sim.Run()

	if !established {
		t.Fatal("client never established")
	}
	if serverConn == nil || serverConn.State() != StateEstablished {
		t.Fatalf("server conn = %v", serverConn)
	}
	if c.State() != StateEstablished {
		t.Fatalf("client state = %v", c.State())
	}
	if c.RemotePort() != 80 || serverConn.RemotePort() != c.LocalPort() {
		t.Fatalf("port mismatch: client %d->%d server sees %d", c.LocalPort(), c.RemotePort(), serverConn.RemotePort())
	}
	if serverConn.Remote() != ipA {
		t.Fatalf("server remote = %v", serverConn.Remote())
	}
}

func TestEchoData(t *testing.T) {
	sim := eventsim.New(2)
	client, server := pair(t, sim, 50*time.Microsecond)

	server.Listen(7, func(c *Conn) {
		c.OnData = func(b []byte) { c.Send(b) } // echo
	})
	var got []byte
	c, _ := client.Dial(ipB, 7)
	c.OnEstablished = func() { c.Send([]byte("hello, tcp")) }
	c.OnData = func(b []byte) { got = append(got, b...) }
	sim.Run()

	if string(got) != "hello, tcp" {
		t.Fatalf("echo = %q", got)
	}
}

func TestLargeTransferSegmented(t *testing.T) {
	sim := eventsim.New(3)
	client, server := pair(t, sim, 10*time.Microsecond)

	payload := make([]byte, 10*MSS+123)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var got []byte
	server.Listen(9, func(c *Conn) {
		c.OnData = func(b []byte) { got = append(got, b...) }
	})
	c, _ := client.Dial(ipB, 9)
	c.OnEstablished = func() { c.Send(payload) }
	sim.Run()

	if !bytes.Equal(got, payload) {
		t.Fatalf("received %d bytes, want %d (content match: %v)", len(got), len(payload), bytes.Equal(got, payload))
	}
}

func TestHandshakeTakesOneRTT(t *testing.T) {
	sim := eventsim.New(4)
	prop := 25 * time.Millisecond // one-way per link; RTT ~ 100ms via 2 links
	client, server := pair(t, sim, prop)
	server.Listen(80, func(c *Conn) {})

	start := sim.Now()
	var establishedAt time.Duration
	c, _ := client.Dial(ipB, 80)
	c.OnEstablished = func() { establishedAt = sim.Now() }
	sim.RunUntil(sim.Now() + time.Second)

	rtt := 4 * prop // client->switch->server and back
	elapsed := establishedAt - start
	if elapsed < rtt || elapsed > rtt+5*time.Millisecond {
		t.Fatalf("handshake took %v, want ~%v", elapsed, rtt)
	}
}

func TestGracefulClose(t *testing.T) {
	sim := eventsim.New(5)
	client, server := pair(t, sim, 10*time.Microsecond)

	var serverClosed, clientClosed bool
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) {
			c.Send([]byte("bye"))
			c.Close()
		}
		c.OnClose = func() { serverClosed = true }
	})
	c, _ := client.Dial(ipB, 80)
	c.OnEstablished = func() { c.Send([]byte("hi")) }
	c.OnData = func(b []byte) { c.Close() }
	c.OnClose = func() { clientClosed = true }
	sim.RunUntil(10 * time.Second)

	if !serverClosed || !clientClosed {
		t.Fatalf("serverClosed=%v clientClosed=%v", serverClosed, clientClosed)
	}
	if len(client.conns) != 0 || len(server.conns) != 0 {
		t.Fatalf("connections leaked: client=%d server=%d", len(client.conns), len(server.conns))
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	sim := eventsim.New(6)
	client, server := pair(t, sim, 10*time.Microsecond)

	// Drop the first data transmission from the client (after handshake).
	dropped := 0
	sent := 0
	client.DropTx = func() bool {
		sent++
		if sent == 3 && dropped == 0 { // SYN=1, ACK=2, first data=3
			dropped++
			return true
		}
		return false
	}
	var got []byte
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) { got = append(got, b...) }
	})
	c, _ := client.Dial(ipB, 80)
	c.OnEstablished = func() { c.Send([]byte("retransmit me")) }
	sim.RunUntil(10 * time.Second)

	if string(got) != "retransmit me" {
		t.Fatalf("got %q after loss", got)
	}
	if client.SegmentsRetransmitted == 0 {
		t.Fatal("no retransmission recorded")
	}
	if dropped != 1 {
		t.Fatalf("dropped %d segments, want 1", dropped)
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	// Directly exercise the receiver path: deliver seq 2 before seq 1.
	sim := eventsim.New(7)
	client, server := pair(t, sim, 0)
	var got []byte
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) { got = append(got, b...) }
	})
	c, _ := client.Dial(ipB, 80)
	c.OnEstablished = func() {}
	sim.Run()

	// Forge out-of-order arrival through the connection's ingest machinery.
	var sc *Conn
	for _, conn := range server.conns {
		sc = conn
	}
	if sc == nil {
		t.Fatal("no server conn")
	}
	base := sc.rcvNxt
	sc.ingestData(base+3, []byte("def"))
	sc.drainInOrder(false)
	if len(got) != 0 {
		t.Fatalf("delivered out-of-order data early: %q", got)
	}
	sc.ingestData(base, []byte("abc"))
	sc.drainInOrder(false)
	if string(got) != "abcdef" {
		t.Fatalf("reassembled = %q, want abcdef", got)
	}
}

func TestDuplicateDataIgnored(t *testing.T) {
	sim := eventsim.New(8)
	client, server := pair(t, sim, 0)
	var got []byte
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) { got = append(got, b...) }
	})
	c, _ := client.Dial(ipB, 80)
	sim.Run()
	var sc *Conn
	for _, conn := range server.conns {
		sc = conn
	}
	base := sc.rcvNxt
	sc.ingestData(base, []byte("xyz"))
	sc.drainInOrder(false)
	sc.ingestData(base, []byte("xyz")) // retransmitted duplicate
	sc.drainInOrder(false)
	if string(got) != "xyz" {
		t.Fatalf("got %q, want xyz exactly once", got)
	}
	_ = c
}

func TestConnectionRefusedRST(t *testing.T) {
	sim := eventsim.New(9)
	client, _ := pair(t, sim, 10*time.Microsecond)
	reset := false
	c, _ := client.Dial(ipB, 4444) // nobody listens
	c.OnReset = func() { reset = true }
	sim.Run()
	if !reset {
		t.Fatal("expected RST for refused connection")
	}
	if c.State() != StateClosed {
		t.Fatalf("state = %v, want CLOSED", c.State())
	}
}

func TestListenPortConflict(t *testing.T) {
	sim := eventsim.New(10)
	_, server := pair(t, sim, 0)
	if _, err := server.Listen(80, func(*Conn) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Listen(80, func(*Conn) {}); err == nil {
		t.Fatal("expected error for duplicate listen")
	}
	server.CloseListener(80)
	if _, err := server.Listen(80, func(*Conn) {}); err != nil {
		t.Fatalf("listen after close: %v", err)
	}
}

func TestSendBeforeEstablishedFails(t *testing.T) {
	sim := eventsim.New(11)
	client, server := pair(t, sim, time.Millisecond)
	server.Listen(80, func(*Conn) {})
	c, _ := client.Dial(ipB, 80)
	if err := c.Send([]byte("early")); err == nil {
		t.Fatal("expected error sending in SYN_SENT")
	}
	sim.Run()
}

func TestSendAfterCloseFails(t *testing.T) {
	sim := eventsim.New(12)
	client, server := pair(t, sim, 0)
	server.Listen(80, func(*Conn) {})
	c, _ := client.Dial(ipB, 80)
	sim.Run()
	c.Close()
	sim.Run()
	if err := c.Send([]byte("late")); err == nil {
		t.Fatal("expected error sending after close")
	}
}

func TestUDPDelivery(t *testing.T) {
	sim := eventsim.New(13)
	client, server := pair(t, sim, 10*time.Microsecond)
	var got []byte
	var gotSrc netip.Addr
	server.ListenUDP(53, func(src netip.Addr, srcPort uint16, payload []byte) {
		got = payload
		gotSrc = src
		server.SendUDP(src, 53, srcPort, []byte("pong"))
	})
	var reply []byte
	client.ListenUDP(5000, func(_ netip.Addr, _ uint16, payload []byte) { reply = payload })
	client.SendUDP(ipB, 5000, 53, []byte("ping"))
	sim.Run()
	if string(got) != "ping" || gotSrc != ipA {
		t.Fatalf("server got %q from %v", got, gotSrc)
	}
	if string(reply) != "pong" {
		t.Fatalf("client reply = %q", reply)
	}
}

func TestUDPPortConflict(t *testing.T) {
	sim := eventsim.New(14)
	_, server := pair(t, sim, 0)
	if err := server.ListenUDP(53, func(netip.Addr, uint16, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := server.ListenUDP(53, func(netip.Addr, uint16, []byte) {}); err == nil {
		t.Fatal("expected conflict error")
	}
}

func TestTwoSequentialConnections(t *testing.T) {
	sim := eventsim.New(15)
	client, server := pair(t, sim, 10*time.Microsecond)
	accepted := 0
	server.Listen(80, func(c *Conn) {
		accepted++
		c.OnData = func(b []byte) { c.Send(b) }
	})
	for i := 0; i < 2; i++ {
		done := false
		c, _ := client.Dial(ipB, 80)
		c.OnEstablished = func() { c.Send([]byte("x")) }
		c.OnData = func([]byte) { done = true; c.Close() }
		sim.RunUntil(sim.Now() + 5*time.Second)
		if !done {
			t.Fatalf("connection %d did not complete", i)
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted = %d, want 2", accepted)
	}
}

func TestAbortSendsRST(t *testing.T) {
	sim := eventsim.New(16)
	client, server := pair(t, sim, 10*time.Microsecond)
	var serverReset bool
	server.Listen(80, func(c *Conn) {
		c.OnReset = func() { serverReset = true }
	})
	c, _ := client.Dial(ipB, 80)
	c.OnEstablished = func() { c.Abort() }
	sim.Run()
	if !serverReset {
		t.Fatal("server never saw RST")
	}
}

func TestStateString(t *testing.T) {
	states := []State{StateClosed, StateSynSent, StateSynReceived, StateEstablished, StateFinWait, StateCloseWait, StateLastAck, State(99)}
	for _, s := range states {
		if s.String() == "" {
			t.Fatalf("empty string for state %d", int(s))
		}
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !seqLT(0xffffffff, 0) {
		t.Fatal("wraparound: 0xffffffff < 0 should hold")
	}
	if seqLT(0, 0) {
		t.Fatal("seqLT(0,0) should be false")
	}
	if !seqLE(5, 5) {
		t.Fatal("seqLE(5,5) should be true")
	}
	if seqLE(6, 5) {
		t.Fatal("seqLE(6,5) should be false")
	}
}

// Property: mod-2^32 ordering is consistent: a < a+delta for delta in
// (0, 2^31).
func TestQuickSeqOrdering(t *testing.T) {
	f := func(a uint32, d uint32) bool {
		delta := d%(1<<31-1) + 1
		return seqLT(a, a+delta) && seqLE(a, a+delta) && !seqLT(a+delta, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary payloads (1..4*MSS bytes) arrive intact and in order.
func TestQuickTransferIntegrity(t *testing.T) {
	f := func(seed int64, raw []byte) bool {
		if len(raw) == 0 {
			raw = []byte{0}
		}
		if len(raw) > 4*MSS {
			raw = raw[:4*MSS]
		}
		sim := eventsim.New(seed)
		client, server := pair(t, sim, 10*time.Microsecond)
		var got []byte
		server.Listen(80, func(c *Conn) {
			c.OnData = func(b []byte) { got = append(got, b...) }
		})
		c, _ := client.Dial(ipB, 80)
		payload := raw
		c.OnEstablished = func() { c.Send(payload) }
		sim.RunUntil(30 * time.Second)
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSimultaneousClose(t *testing.T) {
	// Both ends close at the same instant; both must reach CLOSED.
	sim := eventsim.New(17)
	client, server := pair(t, sim, time.Millisecond)
	var sc *Conn
	server.Listen(80, func(c *Conn) { sc = c })
	c, _ := client.Dial(ipB, 80)
	// Complete the handshake first (the server-side conn only exists once
	// the final ACK lands), then fire both FINs at the same instant.
	sim.RunUntil(sim.Now() + time.Second)
	if sc == nil || c.State() != StateEstablished {
		t.Fatalf("handshake incomplete: sc=%v state=%v", sc, c.State())
	}
	c.Close()
	sc.Close()
	sim.RunUntil(30 * time.Second)
	if c.State() != StateClosed || sc.State() != StateClosed {
		t.Fatalf("states after simultaneous close: %v / %v", c.State(), sc.State())
	}
	if len(client.conns) != 0 || len(server.conns) != 0 {
		t.Fatalf("connections leaked: %d / %d", len(client.conns), len(server.conns))
	}
}

func TestHalfCloseDataStillFlows(t *testing.T) {
	// Client closes its half; server can still deliver data before
	// closing (CLOSE_WAIT semantics).
	sim := eventsim.New(18)
	client, server := pair(t, sim, time.Millisecond)
	var got []byte
	server.Listen(80, func(c *Conn) {
		c.OnData = func(b []byte) {
			// Receive request, respond AFTER the client's FIN arrives.
			sim.Schedule(20*time.Millisecond, func() {
				c.Send([]byte("late response"))
				c.Close()
			})
		}
	})
	c, _ := client.Dial(ipB, 80)
	c.OnData = func(b []byte) { got = append(got, b...) }
	c.OnEstablished = func() {
		c.Send([]byte("request"))
		c.Close() // half-close immediately after sending
	}
	sim.RunUntil(30 * time.Second)
	if string(got) != "late response" {
		t.Fatalf("got %q after half-close", got)
	}
}
