package testbed

import (
	"fmt"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/httpsim"
)

func TestDownloadEndpoint(t *testing.T) {
	tb := New(Config{Seed: 21})
	var body []byte
	c, _ := tb.Client.Dial(tb.ServerAddr, HTTPPort)
	cc := httpsim.NewClientConn(c)
	c.OnEstablished = func() {
		cc.RoundTrip(&httpsim.Request{Method: "GET", Target: "/download?bytes=5000"}, func(r *httpsim.Response) {
			body = r.Body
		})
	}
	tb.Sim.RunUntil(30 * time.Second)
	if len(body) != 5000 {
		t.Fatalf("download body = %d bytes, want 5000", len(body))
	}
	// Deterministic pattern.
	if body[0] != 'a' || body[25] != 'z' || body[26] != 'a' {
		t.Fatalf("body pattern wrong: %q", body[:30])
	}
}

func TestDownloadSizeParsing(t *testing.T) {
	cases := []struct {
		target string
		want   int
	}{
		{"/download", 64 << 10},
		{"/download?bytes=1", 1},
		{"/download?bytes=0", 64 << 10},        // invalid -> default
		{"/download?bytes=abc", 64 << 10},      // invalid -> default
		{"/download?other=5", 64 << 10},        // missing key -> default
		{"/download?bytes=999999999", 4 << 20}, // clamped
		{"/download?x=1&bytes=128", 128},       // later param
	}
	for _, c := range cases {
		if got := downloadSize(c.target); got != c.want {
			t.Errorf("downloadSize(%q) = %d, want %d", c.target, got, c.want)
		}
	}
}

func TestServerParseCostInWireRTT(t *testing.T) {
	tb := New(Config{Seed: 22, ServerParseCost: 10 * time.Millisecond})
	var sent, got time.Duration
	c, _ := tb.Client.Dial(tb.ServerAddr, HTTPPort)
	cc := httpsim.NewClientConn(c)
	c.OnEstablished = func() {
		sent = tb.Sim.Now()
		cc.RoundTrip(&httpsim.Request{Method: "GET", Target: "/probe"}, func(*httpsim.Response) {
			got = tb.Sim.Now()
		})
	}
	tb.Sim.RunUntil(10 * time.Second)
	rtt := got - sent
	if rtt < 60*time.Millisecond || rtt > 61*time.Millisecond {
		t.Fatalf("RTT = %v, want ~60ms (50 delay + 10 parse)", rtt)
	}
}

func TestCrossTrafficCountsOnTestbed(t *testing.T) {
	tb := New(Config{Seed: 23})
	c2s, s2c := tb.StartCrossTraffic(500, 200)
	tb.Advance(time.Second)
	c2s.Stop()
	s2c.Stop()
	if c2s.Sent < 300 || s2c.Sent < 300 {
		t.Fatalf("generators sent %d / %d in 1s at 500/s", c2s.Sent, s2c.Sent)
	}
}

func TestLossRateDropsFrames(t *testing.T) {
	tb := New(Config{Seed: 24, LossRate: 0.5})
	for i := 0; i < 40; i++ {
		tb.Client.SendUDP(tb.ServerAddr, 42000, UDPEchoPort, []byte(fmt.Sprintf("p%d", i)))
	}
	tb.Sim.RunUntil(5 * time.Second)
	if tb.ServerLink.Dropped == 0 {
		t.Fatal("no frames dropped at 50% loss")
	}
}

func TestHTTPPortConflictPanics(t *testing.T) {
	tb := New(Config{Seed: 25})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double service start")
		}
	}()
	tb.startServices() // ports already bound
}
