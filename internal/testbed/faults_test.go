package testbed

import (
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/httpsim"
)

// exchange runs one HTTP GET through the testbed and reports whether a
// response arrived within the deadline.
func exchange(tb *Testbed, deadline time.Duration) bool {
	done := false
	c, err := tb.Client.Dial(tb.ServerAddr, HTTPPort)
	if err != nil {
		return false
	}
	cc := httpsim.NewClientConn(c)
	c.OnEstablished = func() {
		cc.RoundTrip(&httpsim.Request{Method: "GET", Target: "/probe"}, func(*httpsim.Response) {
			done = true
		})
	}
	tb.Sim.RunUntil(deadline)
	return done
}

func TestCleanProfileInstallsNothing(t *testing.T) {
	for _, fp := range []faults.Profile{"", faults.Clean} {
		tb := New(Config{Seed: 1, Faults: fp})
		if tb.Impair != nil || tb.ServerLink.Impair != nil {
			t.Fatalf("Faults=%q must not install an impairment layer", fp)
		}
		if !exchange(tb, 5*time.Second) {
			t.Fatalf("Faults=%q: exchange failed", fp)
		}
	}
}

func TestFaultProfileWired(t *testing.T) {
	tb := New(Config{Seed: 1, Faults: faults.Lossy1pct})
	if tb.Impair == nil || tb.ServerLink.Impair == nil {
		t.Fatal("enabled profile must install the impairment on the server link")
	}
	if !exchange(tb, 5*time.Second) {
		t.Fatal("exchange failed under lossy1pct")
	}
	if tb.Impair.Stats.Judged == 0 {
		t.Fatal("impairment judged no frames")
	}
}

func TestFaultProfileLossReachesTCP(t *testing.T) {
	// Drive enough traffic through a heavily lossy profile that drops must
	// occur, and confirm the exchange still completes — i.e. loss surfaces
	// as TCP retransmission, not as a hung simulation.
	tb := New(Config{Seed: 3, Faults: faults.BurstyWiFi})
	ok := true
	for i := 0; i < 5 && ok; i++ {
		ok = exchange(tb, tb.Sim.Now()+20*time.Second)
	}
	if !ok {
		t.Fatal("exchanges failed under burstywifi")
	}
	if tb.Impair.Stats.DropsLoss == 0 {
		t.Fatal("bursty profile dropped nothing across 5 exchanges")
	}
}

func TestUnknownProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown fault profile must panic in New")
		}
	}()
	New(Config{Seed: 1, Faults: faults.Profile("bogus")})
}
