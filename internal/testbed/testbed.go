// Package testbed assembles the paper's Figure 2 experiment network: a
// client machine and a web-server machine joined by a switch over 100 Mbps
// Ethernet, with an artificial +50 ms delay applied on the server side (at
// the network layer, so it also delays SYN-ACKs) and a WinDump/tcpdump
// equivalent capturing on the client.
//
// The server machine hosts the workloads every measurement method needs:
// an Apache-like HTTP server (container page + probe endpoints), a
// WebSocket echo service, and TCP/UDP echo services.
package testbed

import (
	"net/netip"
	"strconv"
	"strings"
	"time"

	"github.com/browsermetric/browsermetric/internal/arena"
	"github.com/browsermetric/browsermetric/internal/capture"
	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/faults"
	"github.com/browsermetric/browsermetric/internal/httpsim"
	"github.com/browsermetric/browsermetric/internal/netsim"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/tcpsim"
	"github.com/browsermetric/browsermetric/internal/wssim"
)

// Well-known service ports on the testbed server.
const (
	HTTPPort    uint16 = 80
	WSPort      uint16 = 8080
	TCPEchoPort uint16 = 9000
	UDPEchoPort uint16 = 9001
	// FlashPolicyPort serves the cross-domain socket policy file that the
	// Flash plugin fetches before allowing any Socket connection (the
	// mechanism behind Table 1's "same-origin policy can be bypassed"
	// footnote for Flash).
	FlashPolicyPort uint16 = 843
)

// flashPolicyXML is the crossdomain policy the testbed serves on port 843.
const flashPolicyXML = `<?xml version="1.0"?><cross-domain-policy>` +
	`<allow-access-from domain="*" to-ports="*"/></cross-domain-policy>` + "\x00"

// Config tunes the testbed; the zero value plus New's defaults reproduce
// the paper's setup.
type Config struct {
	// ServerDelay is the artificial delay added to every frame leaving
	// the server (default 50 ms, the paper's simulated Internet delay).
	ServerDelay time.Duration
	// LinkRate is the Ethernet line rate in bits/s (default 100 Mbps).
	LinkRate int64
	// Propagation is the one-way per-link latency (default 5 µs — a LAN).
	Propagation time.Duration
	// LossRate injects independent frame loss on the server link (both
	// directions). The paper's testbed is loss-free (the default); the
	// loss-measurement extension uses this knob.
	LossRate float64
	// ServerParseCost models per-request server-side processing time
	// (Apache parse + handler CPU). It lands in the wire RTT — the
	// server-side overhead the paper's conclusion names as the next
	// thing to investigate.
	ServerParseCost time.Duration
	// Faults selects a network-impairment profile for the server link
	// (loss, reordering, duplication, jitter, bottleneck queueing). The
	// zero value and faults.Clean install nothing: the link then runs the
	// exact pre-impairment code path. Unknown profiles panic in New, like
	// every other unusable-testbed configuration error.
	Faults faults.Profile
	// Seed seeds the deterministic simulation.
	Seed int64
	// Tracer, when non-nil, records virtual-time spans across the whole
	// testbed (TCP connects, HTTP server delay, WebSocket upgrades, and —
	// via the methods runner — the full Δd stage waterfall). New binds it
	// to the simulator clock. Tracing only observes; it cannot change any
	// simulated outcome.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives counters and histograms from every
	// simulated layer (segments, retransmits, bytes on wire, requests).
	Metrics *obs.Metrics
	// Arena, when non-nil, owns the testbed's per-run buffers (frames,
	// HTTP messages, parse scratch); BeginRun resets it between runs so a
	// warm run allocates nothing. New creates a private arena when nil.
	// Like Tracer/Metrics it is observational: reuse cannot change any
	// simulated outcome (the determinism suite enforces this), so it is
	// excluded from sweep cache keys.
	Arena *arena.Arena
}

func (c *Config) fillDefaults() {
	if c.ServerDelay == 0 {
		c.ServerDelay = 50 * time.Millisecond
	}
	if c.LinkRate == 0 {
		c.LinkRate = 100_000_000
	}
	if c.Propagation == 0 {
		c.Propagation = 5 * time.Microsecond
	}
}

// Normalize applies the paper-default values to zero fields — the same
// mapping New applies to its own copy — so cache keys built from a
// normalized config treat "zero" and "explicit default" as the same cell.
func (c *Config) Normalize() { c.fillDefaults() }

// Testbed is an assembled Figure 2 network.
type Testbed struct {
	Sim        *eventsim.Simulator
	Client     *tcpsim.Stack
	Server     *tcpsim.Stack
	ClientNIC  *netsim.NIC
	ServerNIC  *netsim.NIC
	ServerAddr netip.Addr
	// Cap is the client-side packet capture (the WinDump/tcpdump stand-in
	// that yields tNs and tNr of Eq. 1).
	Cap *capture.Capture
	// HTTP is the web server; its handler serves the container page and
	// the probe endpoints.
	HTTP *httpsim.Server
	// ServerLink is the switch↔server wire; its loss counters expose how
	// many frames the LossRate knob discarded.
	ServerLink *netsim.Link
	// Impair is the impairment layer installed on ServerLink when
	// Config.Faults selects an enabled profile; nil on the clean path.
	Impair *faults.Impairment
	// Trace and Metrics mirror Config.Tracer/Config.Metrics (nil when
	// observability is off; all recording methods no-op on nil).
	Trace   *obs.Tracer
	Metrics *obs.Metrics
	// Arena owns the per-run buffers of every layer below (frames, HTTP
	// messages, capture scratch). BeginRun resets it; see Config.Arena.
	Arena *arena.Arena

	cfg Config

	// probe holds the per-testbed cached probe responses served by the
	// HTTP handler, so steady-state requests build no response objects.
	probe probeResponses

	// nextUDPPort backs NextUDPPort. Keeping the allocator per-testbed
	// (rather than process-global) makes port assignment a pure function
	// of the testbed's own history, so concurrently running testbeds
	// cannot influence each other's packet traces.
	nextUDPPort uint16
}

// New builds the testbed with the paper's parameters (see Config).
func New(cfg Config) *Testbed {
	cfg.fillDefaults()
	if cfg.Arena == nil {
		cfg.Arena = arena.New(0)
	}
	sim := eventsim.New(cfg.Seed)
	// Slab-reserve event records for the testbed's peak concurrent load
	// (delayed frames in flight, per-conn RTO timers, method timers).
	sim.Reserve(256)
	cfg.Tracer.Bind(sim.Now)

	clientMAC := netsim.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	serverMAC := netsim.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	clientIP := netip.MustParseAddr("192.168.1.10")
	serverIP := netip.MustParseAddr("192.168.1.20")

	clientNIC := netsim.NewNIC(sim, "client-eth0", clientMAC, clientIP)
	serverNIC := netsim.NewNIC(sim, "server-eth0", serverMAC, serverIP)
	serverNIC.EgressDelay = cfg.ServerDelay

	sw := netsim.NewSwitch(sim, 2*time.Microsecond)
	clientLink := netsim.NewLink(sim, cfg.LinkRate, cfg.Propagation)
	serverLink := netsim.NewLink(sim, cfg.LinkRate, cfg.Propagation)
	serverLink.LossRate = cfg.LossRate
	var impair *faults.Impairment
	if cfg.Faults.Enabled() {
		params, err := cfg.Faults.Params()
		if err != nil {
			panic(err)
		}
		// Salt the seed so the impairment stream is independent of the
		// simulator's own generator while remaining a pure function of the
		// testbed seed.
		impair = faults.New(params, cfg.Seed^0x66a17, cfg.Metrics)
		serverLink.Impair = impair
	}
	clientLink.Metrics = cfg.Metrics
	serverLink.Metrics = cfg.Metrics
	clientNIC.Connect(clientLink)
	sw.Connect(clientLink)
	serverNIC.Connect(serverLink)
	sw.Connect(serverLink)

	arp := map[netip.Addr]netsim.MAC{clientIP: clientMAC, serverIP: serverMAC}
	resolve := func(a netip.Addr) (netsim.MAC, bool) { m, ok := arp[a]; return m, ok }

	clientStack := tcpsim.NewStack(sim, clientNIC)
	serverStack := tcpsim.NewStack(sim, serverNIC)
	clientStack.Resolve = resolve
	serverStack.Resolve = resolve
	clientStack.Trace = cfg.Tracer
	clientStack.Metrics = cfg.Metrics
	serverStack.Trace = cfg.Tracer
	serverStack.Metrics = cfg.Metrics
	clientStack.Arena = cfg.Arena
	serverStack.Arena = cfg.Arena

	tb := &Testbed{
		Sim:        sim,
		Client:     clientStack,
		Server:     serverStack,
		ClientNIC:  clientNIC,
		ServerNIC:  serverNIC,
		ServerAddr: serverIP,
		Cap:        capture.Attach(clientNIC, nil),
		ServerLink: serverLink,
		Impair:     impair,
		Trace:      cfg.Tracer,
		Metrics:    cfg.Metrics,
		Arena:      cfg.Arena,
		cfg:        cfg,
	}
	tb.startServices()
	return tb
}

// BeginRun marks the start of a measurement run: the capture truncates
// and the arena recycles every per-run buffer of the previous run. Call
// it between runs, after Advance has idled the testbed through the
// inter-run gap.
//
// The arena reset is guarded by transport quiescence: if any connection
// still holds unacked or undelivered bytes (a retransmission recovering
// from a fault-profile loss can straddle a short gap), the reset is
// skipped for this boundary and the arena simply keeps growing until the
// next quiet one. Quiescence is a pure function of simulator state, so
// the skip decision — like everything else — is deterministic.
func (tb *Testbed) BeginRun() {
	tb.Cap.Reset()
	if tb.Client.Quiescent() && tb.Server.Quiescent() {
		tb.Arena.Reset()
	}
}

// startServices brings up the HTTP, WebSocket and echo services.
func (tb *Testbed) startServices() {
	tb.probe.init()
	tb.HTTP = &httpsim.Server{
		Sim:       tb.Sim,
		Stack:     tb.Server,
		Handler:   tb.probe.handle,
		ParseCost: tb.cfg.ServerParseCost,
	}
	if err := tb.HTTP.Serve(HTTPPort); err != nil {
		panic(err)
	}
	if err := wssim.Serve(tb.Server, WSPort, wsEchoAccept); err != nil {
		panic(err)
	}
	if _, err := tb.Server.Listen(TCPEchoPort, tcpEchoAccept); err != nil {
		panic(err)
	}
	// Flash socket policy service: answer <policy-file-request/> with the
	// permissive crossdomain policy and close, as flashpolicyd does.
	if _, err := tb.Server.Listen(FlashPolicyPort, flashPolicyAccept); err != nil {
		panic(err)
	}
	if err := tb.Server.ListenUDP(UDPEchoPort, func(src netip.Addr, srcPort uint16, p []byte) {
		tb.Server.SendUDP(src, UDPEchoPort, srcPort, p)
	}); err != nil {
		panic(err)
	}
}

// tcpEchoSink echoes every inbound byte. One package-level sink serves
// every echo connection of every testbed — accepting a connection
// allocates nothing.
type tcpEchoSink struct{}

func (tcpEchoSink) ConnData(c *tcpsim.Conn, b []byte) { _ = c.Send(b) }

// flashPolicySink answers any inbound data with the crossdomain policy
// and closes, as flashpolicyd does.
type flashPolicySink struct{}

func (flashPolicySink) ConnData(c *tcpsim.Conn, _ []byte) {
	_ = c.Send(flashPolicyBytes)
	c.Close()
}

var (
	tcpEcho          tcpsim.DataSink = tcpEchoSink{}
	flashPolicy      tcpsim.DataSink = flashPolicySink{}
	flashPolicyBytes                 = []byte(flashPolicyXML)
)

func tcpEchoAccept(c *tcpsim.Conn)     { c.Sink = tcpEcho }
func flashPolicyAccept(c *tcpsim.Conn) { c.Sink = flashPolicy }

// wsEchoAccept installs the shared echo handler on a fresh WebSocket.
func wsEchoAccept(c *wssim.Conn) { c.OnMessage = wsEchoMessage(c) }

// wsEchoMessage returns the shared echo callback; it is a package func so
// every connection reuses one closure shape (see wssim.EchoHandler).
func wsEchoMessage(c *wssim.Conn) func(wssim.Opcode, []byte) {
	return func(op wssim.Opcode, p []byte) { _ = c.Send(op, p) }
}

// probeResponses caches the fixed probe endpoint responses of one
// testbed, so the steady-state request path serves pointers to immutable
// objects instead of building a Response per request. The HTTP server
// never mutates a handler response (close headers land on a scratch
// copy), which is what makes the sharing sound.
type probeResponses struct {
	container httpsim.Response
	postOK    httpsim.Response
	pong      httpsim.Response
}

func (pr *probeResponses) init() {
	pr.container = httpsim.Response{
		Status:  200,
		Headers: httpsim.Headers{{Key: "Content-Type", Value: "text/html"}},
		Body:    containerBody,
	}
	pr.postOK = httpsim.Response{Status: 200, Body: postOKBody}
	pr.pong = httpsim.Response{Status: 200, Body: pongBody}
}

var (
	containerBody = []byte("<html><body><script src=\"/measure.js\"></script></body></html>")
	postOKBody    = []byte("post-ok")
	pongBody      = []byte("pong")
)

// handle serves the measurement workloads: the container page that the
// preparation phase downloads, a small single-packet probe body for GET
// and POST requests, and bulk bodies for throughput measurement
// (/download?bytes=N).
func (pr *probeResponses) handle(req *httpsim.Request) *httpsim.Response {
	switch {
	case req.Target == "/container.html" || req.Target == "/":
		return &pr.container
	case strings.HasPrefix(req.Target, "/download"):
		n := downloadSize(req.Target)
		body := make([]byte, n)
		for i := range body {
			body[i] = byte('a' + i%26)
		}
		return &httpsim.Response{Status: 200, Body: body}
	case req.Method == "POST":
		return &pr.postOK
	default:
		return &pr.pong
	}
}

// downloadSize parses /download?bytes=N, clamped to [1, 4 MiB].
func downloadSize(target string) int {
	const def = 64 << 10
	_, query, ok := strings.Cut(target, "?")
	if !ok {
		return def
	}
	for _, kv := range strings.Split(query, "&") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k != "bytes" {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return def
		}
		if n > 4<<20 {
			n = 4 << 20
		}
		return n
	}
	return def
}

// RTTBase returns the network RTT the testbed imposes on a single-packet
// request/response exchange, dominated by the server-side delay.
func (tb *Testbed) RTTBase() time.Duration { return tb.cfg.ServerDelay }

// StartCrossTraffic injects Poisson UDP cross traffic in both directions
// (client→server and server→client) at the given per-direction datagram
// rate and payload size. The paper's testbed excluded cross traffic; this
// knob shows what that control removes: queueing delay on the shared
// links, i.e. genuine network jitter. Returns the two generators so the
// caller can Stop them or read their counters.
func (tb *Testbed) StartCrossTraffic(rate float64, size int) (c2s, s2c *netsim.TrafficGen) {
	c2s = netsim.NewTrafficGen(tb.Sim, tb.ClientNIC, tb.ServerAddr, tb.ServerNIC.MAC, rate, size)
	s2c = netsim.NewTrafficGen(tb.Sim, tb.ServerNIC, tb.ClientNIC.Addr, tb.ClientNIC.MAC, rate, size)
	c2s.Start()
	s2c.Start()
	return c2s, s2c
}

// Advance idles the testbed for d of virtual time (e.g. the gap between
// experiment repetitions).
func (tb *Testbed) Advance(d time.Duration) { tb.Sim.Advance(d) }

// udpPortBase is the first client-side ephemeral UDP port NextUDPPort
// hands out (the bind is released after each run, but distinct ports keep
// late echoes from a previous run out of the next one's socket).
const udpPortBase uint16 = 40000

// NextUDPPort allocates a distinct client-side UDP port for a probe run on
// this testbed. Deterministic: the n-th call on any testbed returns
// udpPortBase+n (wrapping back to udpPortBase on overflow).
func (tb *Testbed) NextUDPPort() uint16 {
	p := udpPortBase + tb.nextUDPPort
	if p < udpPortBase { // wrapped
		tb.nextUDPPort = 0
		p = udpPortBase
	}
	tb.nextUDPPort++
	return p
}
