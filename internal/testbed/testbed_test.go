package testbed

import (
	"net/netip"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/httpsim"
	"github.com/browsermetric/browsermetric/internal/wssim"
)

func TestContainerPageServed(t *testing.T) {
	tb := New(Config{Seed: 1})
	var body []byte
	c, err := tb.Client.Dial(tb.ServerAddr, HTTPPort)
	if err != nil {
		t.Fatal(err)
	}
	cc := httpsim.NewClientConn(c)
	c.OnEstablished = func() {
		cc.RoundTrip(&httpsim.Request{Method: "GET", Target: "/container.html"}, func(r *httpsim.Response) {
			body = r.Body
		})
	}
	tb.Sim.RunUntil(5 * time.Second)
	if len(body) == 0 || string(body[:6]) != "<html>" {
		t.Fatalf("container body = %q", body)
	}
}

func TestProbeEndpoints(t *testing.T) {
	tb := New(Config{Seed: 2})
	var getBody, postBody string
	c, _ := tb.Client.Dial(tb.ServerAddr, HTTPPort)
	cc := httpsim.NewClientConn(c)
	c.OnEstablished = func() {
		cc.RoundTrip(&httpsim.Request{Method: "GET", Target: "/probe"}, func(r *httpsim.Response) {
			getBody = string(r.Body)
			cc.RoundTrip(&httpsim.Request{Method: "POST", Target: "/probe", Body: []byte("x")}, func(r2 *httpsim.Response) {
				postBody = string(r2.Body)
			})
		})
	}
	tb.Sim.RunUntil(5 * time.Second)
	if getBody != "pong" || postBody != "post-ok" {
		t.Fatalf("bodies = %q %q", getBody, postBody)
	}
}

func TestServerDelayDominatesRTT(t *testing.T) {
	tb := New(Config{Seed: 3})
	var sent, got time.Duration
	c, _ := tb.Client.Dial(tb.ServerAddr, TCPEchoPort)
	c.OnEstablished = func() {
		sent = tb.Sim.Now()
		c.Send([]byte("ping"))
	}
	c.OnData = func([]byte) { got = tb.Sim.Now() }
	tb.Sim.RunUntil(5 * time.Second)
	rtt := got - sent
	if rtt < 50*time.Millisecond || rtt > 51*time.Millisecond {
		t.Fatalf("echo RTT = %v, want ~50ms", rtt)
	}
	if tb.RTTBase() != 50*time.Millisecond {
		t.Fatalf("RTTBase = %v", tb.RTTBase())
	}
}

func TestHandshakeAlsoDelayed(t *testing.T) {
	// The SYN-ACK crosses the delayed server NIC, so connection setup
	// costs ~50 ms — the Table 3 mechanism.
	tb := New(Config{Seed: 4})
	var established time.Duration
	start := tb.Sim.Now()
	c, _ := tb.Client.Dial(tb.ServerAddr, HTTPPort)
	c.OnEstablished = func() { established = tb.Sim.Now() }
	tb.Sim.RunUntil(5 * time.Second)
	if d := established - start; d < 50*time.Millisecond || d > 51*time.Millisecond {
		t.Fatalf("handshake took %v, want ~50ms", d)
	}
}

func TestWebSocketEcho(t *testing.T) {
	tb := New(Config{Seed: 5})
	var echoed string
	c, _ := tb.Client.Dial(tb.ServerAddr, WSPort)
	c.OnEstablished = func() {
		ws, _ := wssim.Dial(c, "server", "/")
		ws.OnOpen = func() { ws.Send(wssim.OpText, []byte("hello")) }
		ws.OnMessage = func(_ wssim.Opcode, p []byte) { echoed = string(p) }
	}
	tb.Sim.RunUntil(5 * time.Second)
	if echoed != "hello" {
		t.Fatalf("echoed = %q", echoed)
	}
}

func TestUDPEcho(t *testing.T) {
	tb := New(Config{Seed: 6})
	var echoed string
	tb.Client.ListenUDP(41000, func(_ netip.Addr, _ uint16, _ []byte) {})
	tb.Client.CloseUDP(41000)
	tb.Client.ListenUDP(41000, func(_ netip.Addr, _ uint16, p []byte) { echoed = string(p) })
	tb.Client.SendUDP(tb.ServerAddr, 41000, UDPEchoPort, []byte("dgram"))
	tb.Sim.RunUntil(5 * time.Second)
	if echoed != "dgram" {
		t.Fatalf("echoed = %q", echoed)
	}
}

func TestCaptureSeesTraffic(t *testing.T) {
	tb := New(Config{Seed: 7})
	c, _ := tb.Client.Dial(tb.ServerAddr, TCPEchoPort)
	c.OnEstablished = func() { c.Send([]byte("x")) }
	tb.Sim.RunUntil(5 * time.Second)
	if len(tb.Cap.Records()) < 4 { // SYN, SYN-ACK, ACK, data, echo, acks
		t.Fatalf("capture has %d records", len(tb.Cap.Records()))
	}
	pairs := tb.Cap.MatchRTT(TCPEchoPort)
	if len(pairs) != 1 || pairs[0].RTT() < 50*time.Millisecond {
		t.Fatalf("pairs = %+v", pairs)
	}
}

func TestConfigOverrides(t *testing.T) {
	tb := New(Config{Seed: 8, ServerDelay: 10 * time.Millisecond, LinkRate: 1_000_000_000, Propagation: time.Microsecond})
	var sent, got time.Duration
	c, _ := tb.Client.Dial(tb.ServerAddr, TCPEchoPort)
	c.OnEstablished = func() { sent = tb.Sim.Now(); c.Send([]byte("p")) }
	c.OnData = func([]byte) { got = tb.Sim.Now() }
	tb.Sim.RunUntil(5 * time.Second)
	if rtt := got - sent; rtt < 10*time.Millisecond || rtt > 11*time.Millisecond {
		t.Fatalf("RTT = %v with 10ms server delay", rtt)
	}
}

func TestAdvance(t *testing.T) {
	tb := New(Config{Seed: 9})
	tb.Advance(42 * time.Second)
	if tb.Sim.Now() != 42*time.Second {
		t.Fatalf("Now = %v", tb.Sim.Now())
	}
}
