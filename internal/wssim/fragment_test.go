package wssim

import (
	"bytes"
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
)

func TestFragmentedMessageReassembled(t *testing.T) {
	sim := eventsim.New(31)
	client, server, serverIP := wsPair(t, sim, 10*time.Microsecond)

	var gotOp Opcode
	var got []byte
	msgs := 0
	Serve(server, 8080, func(c *Conn) {
		c.OnMessage = func(op Opcode, p []byte) {
			gotOp, got = op, p
			msgs++
		}
	})

	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	tc, _ := client.Dial(serverIP, 8080)
	tc.OnEstablished = func() {
		ws, _ := Dial(tc, "s", "/")
		ws.OnOpen = func() {
			if err := ws.SendFragmented(OpBinary, payload, 300); err != nil {
				t.Errorf("SendFragmented: %v", err)
			}
		}
	}
	sim.RunUntil(10 * time.Second)

	if msgs != 1 {
		t.Fatalf("messages delivered = %d, want 1 (reassembled)", msgs)
	}
	if gotOp != OpBinary {
		t.Fatalf("opcode = %v, want binary (from the initial frame)", gotOp)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %d bytes, match=%v", len(got), bytes.Equal(got, payload))
	}
}

func TestFragmentExactMultiple(t *testing.T) {
	sim := eventsim.New(32)
	client, server, serverIP := wsPair(t, sim, 0)
	var got []byte
	msgs := 0
	Serve(server, 8080, func(c *Conn) {
		c.OnMessage = func(_ Opcode, p []byte) { got = p; msgs++ }
	})
	payload := make([]byte, 600) // exactly 2 chunks of 300
	tc, _ := client.Dial(serverIP, 8080)
	tc.OnEstablished = func() {
		ws, _ := Dial(tc, "s", "/")
		ws.OnOpen = func() { ws.SendFragmented(OpText, payload, 300) }
	}
	sim.RunUntil(10 * time.Second)
	if msgs != 1 || len(got) != 600 {
		t.Fatalf("msgs=%d len=%d", msgs, len(got))
	}
}

func TestSingleChunkFragmentedIsJustAFrame(t *testing.T) {
	sim := eventsim.New(33)
	client, server, serverIP := wsPair(t, sim, 0)
	msgs := 0
	Serve(server, 8080, func(c *Conn) {
		c.OnMessage = func(_ Opcode, _ []byte) { msgs++ }
	})
	tc, _ := client.Dial(serverIP, 8080)
	tc.OnEstablished = func() {
		ws, _ := Dial(tc, "s", "/")
		ws.OnOpen = func() { ws.SendFragmented(OpBinary, []byte("tiny"), 100) }
	}
	sim.RunUntil(10 * time.Second)
	if msgs != 1 {
		t.Fatalf("msgs = %d", msgs)
	}
}

func TestStrayContinuationAborts(t *testing.T) {
	sim := eventsim.New(34)
	client, server, serverIP := wsPair(t, sim, 0)
	closed := false
	Serve(server, 8080, func(c *Conn) {
		c.OnClose = func() { closed = true }
		c.OnMessage = func(_ Opcode, _ []byte) {}
	})
	tc, _ := client.Dial(serverIP, 8080)
	tc.OnEstablished = func() {
		ws, _ := Dial(tc, "s", "/")
		ws.OnOpen = func() {
			// A continuation with no message in progress is a protocol
			// violation; the peer must tear the connection down.
			f := &Frame{Fin: true, Opcode: OpContinuation, Masked: true, Payload: []byte("stray")}
			tc.Send(f.Marshal())
		}
	}
	sim.RunUntil(10 * time.Second)
	if !closed {
		t.Fatal("stray continuation not rejected")
	}
}

func TestInterleavedControlDuringFragmentation(t *testing.T) {
	// A ping between fragments must be answered without disturbing
	// reassembly (control frames may interleave, per RFC 6455).
	sim := eventsim.New(35)
	client, server, serverIP := wsPair(t, sim, 0)
	var got []byte
	Serve(server, 8080, func(c *Conn) {
		c.OnMessage = func(_ Opcode, p []byte) { got = p }
	})
	var pong bool
	tc, _ := client.Dial(serverIP, 8080)
	tc.OnEstablished = func() {
		ws, _ := Dial(tc, "s", "/")
		ws.OnMessage = func(op Opcode, _ []byte) {
			if op == OpPong {
				pong = true
			}
		}
		ws.OnOpen = func() {
			f1 := &Frame{Fin: false, Opcode: OpBinary, Masked: true, Payload: []byte("part1-")}
			ping := &Frame{Fin: true, Opcode: OpPing, Masked: true, Payload: []byte("hb")}
			f2 := &Frame{Fin: true, Opcode: OpContinuation, Masked: true, Payload: []byte("part2")}
			tc.Send(f1.Marshal())
			tc.Send(ping.Marshal())
			tc.Send(f2.Marshal())
		}
	}
	sim.RunUntil(10 * time.Second)
	if string(got) != "part1-part2" {
		t.Fatalf("reassembled = %q", got)
	}
	if !pong {
		t.Fatal("interleaved ping not answered")
	}
}
