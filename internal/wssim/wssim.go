// Package wssim implements the WebSocket protocol (RFC 6455) over the
// tcpsim substrate: the HTTP/1.1 upgrade handshake with the real
// Sec-WebSocket-Accept derivation, and the binary frame codec with client
// masking.
//
// WebSocket is the paper's "native socket" option: it is the only
// socket-grade transport reachable from plain JavaScript and, per the
// evaluation, delivers the most accurate and consistent RTTs of the
// DOM/JavaScript-based methods.
package wssim

import (
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/browsermetric/browsermetric/internal/arena"
	"github.com/browsermetric/browsermetric/internal/httpsim"
	"github.com/browsermetric/browsermetric/internal/obs"
	"github.com/browsermetric/browsermetric/internal/tcpsim"
)

// Opcode identifies a frame type.
type Opcode byte

// RFC 6455 opcodes.
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xa
)

// magicGUID is the RFC 6455 handshake GUID.
const magicGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// Codec errors.
var (
	ErrIncomplete = errors.New("wssim: incomplete frame")
	ErrMalformed  = errors.New("wssim: malformed frame")
)

// Frame is a single WebSocket frame.
type Frame struct {
	Fin     bool
	Opcode  Opcode
	Masked  bool
	MaskKey [4]byte
	Payload []byte
}

// Marshal serializes the frame. Masked frames are XOR-masked with MaskKey
// as the client side must do.
func (f *Frame) Marshal() []byte { return f.MarshalArena(nil) }

// MarshalArena is Marshal carving the wire bytes from an arena instead of
// the heap (nil arena falls back to make). Bytes are identical either way.
func (f *Frame) MarshalArena(a *arena.Arena) []byte {
	b0 := byte(f.Opcode) & 0x0f
	if f.Fin {
		b0 |= 0x80
	}
	n := len(f.Payload)
	hdrLen := 2
	switch {
	case n < 126:
	case n <= 0xffff:
		hdrLen = 4
	default:
		hdrLen = 10
	}
	if f.Masked {
		hdrLen += 4
	}
	out := a.Bytes(hdrLen + n) // header + payload in one carve
	out[0] = b0
	switch {
	case n < 126:
		out[1] = byte(n)
	case n <= 0xffff:
		out[1] = 126
		binary.BigEndian.PutUint16(out[2:], uint16(n))
	default:
		out[1] = 127
		binary.BigEndian.PutUint64(out[2:], uint64(n))
	}
	if f.Masked {
		out[1] |= 0x80
		copy(out[hdrLen-4:hdrLen], f.MaskKey[:])
	}
	copy(out[hdrLen:], f.Payload)
	if f.Masked {
		body := out[hdrLen:]
		for i := range body {
			body[i] ^= f.MaskKey[i%4]
		}
	}
	return out
}

// parseHeader decodes a frame header from the front of b, returning the
// header length and payload length. The MaskKey (when present) lands in
// *key.
func parseHeader(b []byte, key *[4]byte) (fin bool, op Opcode, masked bool, off, plen int, err error) {
	if len(b) < 2 {
		return false, 0, false, 0, 0, ErrIncomplete
	}
	fin = b[0]&0x80 != 0
	op = Opcode(b[0] & 0x0f)
	masked = b[1]&0x80 != 0
	if b[0]&0x70 != 0 {
		return false, 0, false, 0, 0, fmt.Errorf("%w: nonzero RSV bits", ErrMalformed)
	}
	plen64 := uint64(b[1] & 0x7f)
	off = 2
	switch plen64 {
	case 126:
		if len(b) < off+2 {
			return false, 0, false, 0, 0, ErrIncomplete
		}
		plen64 = uint64(binary.BigEndian.Uint16(b[off:]))
		off += 2
	case 127:
		if len(b) < off+8 {
			return false, 0, false, 0, 0, ErrIncomplete
		}
		plen64 = binary.BigEndian.Uint64(b[off:])
		off += 8
		if plen64 > 1<<31 {
			return false, 0, false, 0, 0, fmt.Errorf("%w: frame length %d too large", ErrMalformed, plen64)
		}
	}
	if masked {
		if len(b) < off+4 {
			return false, 0, false, 0, 0, ErrIncomplete
		}
		copy(key[:], b[off:off+4])
		off += 4
	}
	if uint64(len(b)) < uint64(off)+plen64 {
		return false, 0, false, 0, 0, ErrIncomplete
	}
	return fin, op, masked, off, int(plen64), nil
}

// ParseFrame decodes one frame from the front of b, returning the frame
// and bytes consumed. Masked payloads are unmasked into a fresh copy; b is
// never mutated.
func ParseFrame(b []byte) (*Frame, int, error) {
	f := &Frame{}
	var err error
	var off, plen int
	f.Fin, f.Opcode, f.Masked, off, plen, err = parseHeader(b, &f.MaskKey)
	if err != nil {
		return nil, 0, err
	}
	f.Payload = make([]byte, plen)
	copy(f.Payload, b[off:off+plen])
	if f.Masked {
		for i := range f.Payload {
			f.Payload[i] ^= f.MaskKey[i%4]
		}
	}
	return f, off + plen, nil
}

// parseFrameInto is the allocation-free variant the conn's receive loop
// uses: the payload aliases b and masked payloads are unmasked in place,
// so the result is only valid until b's backing buffer is recycled.
func parseFrameInto(f *Frame, b []byte) (int, error) {
	var err error
	var off, plen int
	f.Fin, f.Opcode, f.Masked, off, plen, err = parseHeader(b, &f.MaskKey)
	if err != nil {
		return 0, err
	}
	f.Payload = b[off : off+plen]
	if f.Masked {
		for i := range f.Payload {
			f.Payload[i] ^= f.MaskKey[i%4]
		}
	}
	return off + plen, nil
}

// AcceptKey derives the Sec-WebSocket-Accept value for a client key.
func AcceptKey(clientKey string) string {
	h := sha1.Sum([]byte(clientKey + magicGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Conn is a WebSocket connection over a tcpsim connection. Messages are
// delivered via OnMessage once the handshake completes.
//
// The conn is a tcpsim.DataSink: handshake parsing and the frame receive
// loop run without per-connection closures, and a received message's
// payload aliases the conn's receive buffer — it is valid until the next
// message arrives on this conn; retain a copy to keep it longer.
type Conn struct {
	TCP      *tcpsim.Conn
	client   bool
	buf      []byte
	off      int // parse offset into buf; buf resets to [:0] once consumed
	upgraded bool

	// OnOpen fires when the handshake completes (client side only; server
	// conns are created already open).
	OnOpen func()
	// OnMessage fires per complete message: fragmented messages (a
	// non-FIN data frame followed by continuation frames) are reassembled
	// and delivered once, with the initial frame's opcode.
	OnMessage func(op Opcode, payload []byte)
	// OnClose fires when a Close frame arrives or the TCP conn dies.
	OnClose func()

	// Fragment reassembly state. fragBuf keeps its capacity across
	// messages; a delivered reassembled payload is valid until the next
	// fragmented message starts.
	fragOp  Opcode
	fragBuf []byte
	inFrag  bool

	rframe   Frame       // reused receive-parse target
	sframe   Frame       // reused send-marshal source
	acceptCb func(*Conn) // server side: pending accept callback
	upSpan   *obs.Span   // client side: upgrade span
}

// Send transmits one data frame. Client connections mask it, per RFC 6455.
func (c *Conn) Send(op Opcode, payload []byte) error {
	c.sframe = Frame{Fin: true, Opcode: op, Payload: payload}
	if c.client {
		c.sframe.Masked = true
		c.sframe.MaskKey = [4]byte{0x12, 0x34, 0x56, 0x78}
	}
	m := c.TCP.Metrics()
	m.Add("ws_messages_sent", 1)
	m.Add("ws_bytes_sent", int64(len(payload)))
	return c.TCP.Send(c.sframe.MarshalArena(c.TCP.Arena()))
}

// SendFragmented transmits one message split into chunkSize-byte frames:
// an initial frame with the real opcode and FIN clear, continuations, and
// a final FIN continuation. The receiver reassembles into one OnMessage.
func (c *Conn) SendFragmented(op Opcode, payload []byte, chunkSize int) error {
	if chunkSize <= 0 {
		return fmt.Errorf("wssim: chunk size must be positive")
	}
	first := true
	for {
		n := len(payload)
		if n > chunkSize {
			n = chunkSize
		}
		c.sframe = Frame{
			Fin:     len(payload) <= chunkSize,
			Opcode:  OpContinuation,
			Payload: payload[:n],
		}
		if first {
			c.sframe.Opcode = op
			first = false
		}
		if c.client {
			c.sframe.Masked = true
			c.sframe.MaskKey = [4]byte{0x9a, 0xbc, 0xde, 0xf0}
		}
		fin := c.sframe.Fin
		if err := c.TCP.Send(c.sframe.MarshalArena(c.TCP.Arena())); err != nil {
			return err
		}
		payload = payload[n:]
		if fin {
			return nil
		}
	}
}

// Close sends a Close frame and closes the transport.
func (c *Conn) Close() {
	c.sframe = Frame{Fin: true, Opcode: OpClose, Masked: c.client}
	_ = c.TCP.Send(c.sframe.MarshalArena(c.TCP.Arena()))
	c.TCP.Close()
}

// ConnData implements tcpsim.DataSink: handshake bytes until upgraded,
// frames afterwards.
func (c *Conn) ConnData(_ *tcpsim.Conn, b []byte) {
	c.buf = append(c.buf, b...)
	if !c.upgraded {
		if c.client {
			c.clientHandshake()
		} else {
			c.serverHandshake()
		}
		return
	}
	c.drain()
}

// drain parses and dispatches complete frames from the receive buffer.
func (c *Conn) drain() {
	for {
		n, err := parseFrameInto(&c.rframe, c.buf[c.off:])
		if err == ErrIncomplete {
			return
		}
		if err != nil {
			c.TCP.Abort()
			if c.OnClose != nil {
				c.OnClose()
			}
			return
		}
		c.off += n
		if c.off == len(c.buf) {
			// Fully consumed: reclaim the buffer. The just-parsed payload
			// still aliases the consumed region, which later appends will
			// only overwrite once new data arrives — hence the "valid
			// until the next message" delivery contract.
			c.buf = c.buf[:0]
			c.off = 0
		}
		f := &c.rframe
		switch f.Opcode {
		case OpClose:
			if c.OnClose != nil {
				c.OnClose()
			}
			c.TCP.Close()
			return
		case OpPing:
			c.sframe = Frame{Fin: true, Opcode: OpPong, Payload: f.Payload, Masked: c.client}
			_ = c.TCP.Send(c.sframe.MarshalArena(c.TCP.Arena()))
		case OpContinuation:
			if !c.inFrag {
				// Continuation without an open message: protocol error.
				c.TCP.Abort()
				if c.OnClose != nil {
					c.OnClose()
				}
				return
			}
			c.fragBuf = append(c.fragBuf, f.Payload...)
			if f.Fin {
				c.inFrag = false
				if c.OnMessage != nil {
					c.OnMessage(c.fragOp, c.fragBuf)
				}
			}
		default:
			if !f.Fin {
				// Start of a fragmented message.
				c.inFrag = true
				c.fragOp = f.Opcode
				c.fragBuf = append(c.fragBuf[:0], f.Payload...)
				continue
			}
			if c.OnMessage != nil {
				c.OnMessage(f.Opcode, f.Payload)
			}
		}
	}
}

// finishHandshake switches the conn into frame mode: the unconsumed tail
// of the handshake bytes moves to the buffer's front so the frame loop's
// offset bookkeeping starts clean.
func (c *Conn) finishHandshake(consumed int) {
	rest := c.buf[consumed:]
	copy(c.buf, rest)
	c.buf = c.buf[:len(rest)]
	c.off = 0
	c.upgraded = true
}

func (c *Conn) clientHandshake() {
	resp, n, err := httpsim.ParseResponse(c.buf)
	if err == httpsim.ErrIncomplete {
		return
	}
	if err != nil || resp.Status != 101 || resp.Headers.Get("Sec-WebSocket-Accept") != clientAcceptKey {
		c.TCP.Abort()
		if c.OnClose != nil {
			c.OnClose()
		}
		return
	}
	c.finishHandshake(n)
	c.upSpan.Done()
	if c.OnOpen != nil {
		c.OnOpen()
	}
	if len(c.buf) > 0 {
		c.drain()
	}
}

func (c *Conn) serverHandshake() {
	req, n, err := httpsim.ParseRequest(c.buf)
	if err == httpsim.ErrIncomplete {
		return
	}
	key := ""
	if err == nil {
		key = req.Headers.Get("Sec-WebSocket-Key")
	}
	if err != nil || key == "" {
		c.TCP.Send((&httpsim.Response{Status: 400}).Marshal())
		c.TCP.Close()
		return
	}
	if key == clientKey {
		// The simulated clients all send the static nonce; its response
		// bytes are precomputed once per process.
		c.TCP.Send(stdUpgradeResponse)
	} else {
		resp := httpsim.Response{
			Status: 101,
			Headers: httpsim.Headers{
				{Key: "Upgrade", Value: "websocket"},
				{Key: "Connection", Value: "Upgrade"},
				{Key: "Sec-WebSocket-Accept", Value: AcceptKey(key)},
			},
		}
		c.TCP.Send(resp.MarshalArena(c.TCP.Arena()))
	}
	c.finishHandshake(n)
	accept := c.acceptCb
	c.acceptCb = nil
	if accept != nil {
		accept(c)
	}
	if len(c.buf) > 0 {
		c.drain()
	}
}

// clientKey is the static nonce our simulated clients send; the value is
// arbitrary but must be valid base64 of 16 bytes.
const clientKey = "dGhlIHNhbXBsZSBub25jZQ=="

// clientAcceptKey is AcceptKey(clientKey), derived once.
var clientAcceptKey = AcceptKey(clientKey)

// stdUpgradeResponse is the marshaled 101 response for the static client
// nonce. Sending a shared slice is safe: the transport treats payload
// bytes as read-only.
var stdUpgradeResponse = (&httpsim.Response{
	Status: 101,
	Headers: httpsim.Headers{
		{Key: "Upgrade", Value: "websocket"},
		{Key: "Connection", Value: "Upgrade"},
		{Key: "Sec-WebSocket-Accept", Value: clientAcceptKey},
	},
}).Marshal()

// Dial performs the client upgrade handshake on an *established* tcpsim
// connection and returns the WebSocket conn. OnOpen fires when the 101
// response arrives.
func Dial(tc *tcpsim.Conn, host, path string) (*Conn, error) {
	c := &Conn{TCP: tc, client: true}
	c.upSpan = tc.Tracer().Begin("ws-upgrade").Str("path", path)
	req := httpsim.Request{
		Method: "GET",
		Target: path,
		Headers: httpsim.Headers{
			{Key: "Host", Value: host},
			{Key: "Upgrade", Value: "websocket"},
			{Key: "Connection", Value: "Upgrade"},
			{Key: "Sec-WebSocket-Key", Value: clientKey},
			{Key: "Sec-WebSocket-Version", Value: "13"},
		},
	}
	tc.Sink = c
	return c, tc.Send(req.MarshalArena(tc.Arena()))
}

// Serve installs a WebSocket acceptor on stack port. accept is invoked
// with each upgraded connection; the handler should set OnMessage.
func Serve(stack *tcpsim.Stack, port uint16, accept func(*Conn)) error {
	_, err := stack.Listen(port, func(tc *tcpsim.Conn) {
		c := &Conn{TCP: tc, acceptCb: accept}
		tc.Sink = c
	})
	return err
}
