// Package wssim implements the WebSocket protocol (RFC 6455) over the
// tcpsim substrate: the HTTP/1.1 upgrade handshake with the real
// Sec-WebSocket-Accept derivation, and the binary frame codec with client
// masking.
//
// WebSocket is the paper's "native socket" option: it is the only
// socket-grade transport reachable from plain JavaScript and, per the
// evaluation, delivers the most accurate and consistent RTTs of the
// DOM/JavaScript-based methods.
package wssim

import (
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/browsermetric/browsermetric/internal/httpsim"
	"github.com/browsermetric/browsermetric/internal/tcpsim"
)

// Opcode identifies a frame type.
type Opcode byte

// RFC 6455 opcodes.
const (
	OpContinuation Opcode = 0x0
	OpText         Opcode = 0x1
	OpBinary       Opcode = 0x2
	OpClose        Opcode = 0x8
	OpPing         Opcode = 0x9
	OpPong         Opcode = 0xa
)

// magicGUID is the RFC 6455 handshake GUID.
const magicGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// Codec errors.
var (
	ErrIncomplete = errors.New("wssim: incomplete frame")
	ErrMalformed  = errors.New("wssim: malformed frame")
)

// Frame is a single WebSocket frame.
type Frame struct {
	Fin     bool
	Opcode  Opcode
	Masked  bool
	MaskKey [4]byte
	Payload []byte
}

// Marshal serializes the frame. Masked frames are XOR-masked with MaskKey
// as the client side must do.
func (f *Frame) Marshal() []byte {
	b0 := byte(f.Opcode) & 0x0f
	if f.Fin {
		b0 |= 0x80
	}
	n := len(f.Payload)
	hdrLen := 2
	switch {
	case n < 126:
	case n <= 0xffff:
		hdrLen = 4
	default:
		hdrLen = 10
	}
	if f.Masked {
		hdrLen += 4
	}
	out := make([]byte, hdrLen+n) // header + payload in one allocation
	out[0] = b0
	switch {
	case n < 126:
		out[1] = byte(n)
	case n <= 0xffff:
		out[1] = 126
		binary.BigEndian.PutUint16(out[2:], uint16(n))
	default:
		out[1] = 127
		binary.BigEndian.PutUint64(out[2:], uint64(n))
	}
	if f.Masked {
		out[1] |= 0x80
		copy(out[hdrLen-4:hdrLen], f.MaskKey[:])
	}
	copy(out[hdrLen:], f.Payload)
	if f.Masked {
		body := out[hdrLen:]
		for i := range body {
			body[i] ^= f.MaskKey[i%4]
		}
	}
	return out
}

// ParseFrame decodes one frame from the front of b, returning the frame
// and bytes consumed. Masked payloads are unmasked.
func ParseFrame(b []byte) (*Frame, int, error) {
	if len(b) < 2 {
		return nil, 0, ErrIncomplete
	}
	f := &Frame{
		Fin:    b[0]&0x80 != 0,
		Opcode: Opcode(b[0] & 0x0f),
		Masked: b[1]&0x80 != 0,
	}
	if b[0]&0x70 != 0 {
		return nil, 0, fmt.Errorf("%w: nonzero RSV bits", ErrMalformed)
	}
	plen := uint64(b[1] & 0x7f)
	off := 2
	switch plen {
	case 126:
		if len(b) < off+2 {
			return nil, 0, ErrIncomplete
		}
		plen = uint64(binary.BigEndian.Uint16(b[off:]))
		off += 2
	case 127:
		if len(b) < off+8 {
			return nil, 0, ErrIncomplete
		}
		plen = binary.BigEndian.Uint64(b[off:])
		off += 8
		if plen > 1<<31 {
			return nil, 0, fmt.Errorf("%w: frame length %d too large", ErrMalformed, plen)
		}
	}
	if f.Masked {
		if len(b) < off+4 {
			return nil, 0, ErrIncomplete
		}
		copy(f.MaskKey[:], b[off:off+4])
		off += 4
	}
	if uint64(len(b)) < uint64(off)+plen {
		return nil, 0, ErrIncomplete
	}
	f.Payload = make([]byte, plen)
	copy(f.Payload, b[off:off+int(plen)])
	if f.Masked {
		for i := range f.Payload {
			f.Payload[i] ^= f.MaskKey[i%4]
		}
	}
	return f, off + int(plen), nil
}

// AcceptKey derives the Sec-WebSocket-Accept value for a client key.
func AcceptKey(clientKey string) string {
	h := sha1.Sum([]byte(clientKey + magicGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Conn is a WebSocket connection over a tcpsim connection. Messages are
// delivered via OnMessage once the handshake completes.
type Conn struct {
	TCP      *tcpsim.Conn
	client   bool
	buf      []byte
	upgraded bool

	// OnOpen fires when the handshake completes (client side only; server
	// conns are created already open).
	OnOpen func()
	// OnMessage fires per complete message: fragmented messages (a
	// non-FIN data frame followed by continuation frames) are reassembled
	// and delivered once, with the initial frame's opcode.
	OnMessage func(op Opcode, payload []byte)
	// OnClose fires when a Close frame arrives or the TCP conn dies.
	OnClose func()

	// Fragment reassembly state.
	fragOp  Opcode
	fragBuf []byte
	inFrag  bool
}

// Send transmits one data frame. Client connections mask it, per RFC 6455.
func (c *Conn) Send(op Opcode, payload []byte) error {
	f := &Frame{Fin: true, Opcode: op, Payload: payload}
	if c.client {
		f.Masked = true
		f.MaskKey = [4]byte{0x12, 0x34, 0x56, 0x78}
	}
	m := c.TCP.Metrics()
	m.Add("ws_messages_sent", 1)
	m.Add("ws_bytes_sent", int64(len(payload)))
	return c.TCP.Send(f.Marshal())
}

// SendFragmented transmits one message split into chunkSize-byte frames:
// an initial frame with the real opcode and FIN clear, continuations, and
// a final FIN continuation. The receiver reassembles into one OnMessage.
func (c *Conn) SendFragmented(op Opcode, payload []byte, chunkSize int) error {
	if chunkSize <= 0 {
		return fmt.Errorf("wssim: chunk size must be positive")
	}
	first := true
	for {
		n := len(payload)
		if n > chunkSize {
			n = chunkSize
		}
		f := &Frame{
			Fin:     len(payload) <= chunkSize,
			Opcode:  OpContinuation,
			Payload: payload[:n],
		}
		if first {
			f.Opcode = op
			first = false
		}
		if c.client {
			f.Masked = true
			f.MaskKey = [4]byte{0x9a, 0xbc, 0xde, 0xf0}
		}
		if err := c.TCP.Send(f.Marshal()); err != nil {
			return err
		}
		payload = payload[n:]
		if f.Fin {
			return nil
		}
	}
}

// Close sends a Close frame and closes the transport.
func (c *Conn) Close() {
	f := &Frame{Fin: true, Opcode: OpClose}
	if c.client {
		f.Masked = true
	}
	_ = c.TCP.Send(f.Marshal())
	c.TCP.Close()
}

func (c *Conn) onData(b []byte) {
	c.buf = append(c.buf, b...)
	for {
		f, n, err := ParseFrame(c.buf)
		if err == ErrIncomplete {
			return
		}
		if err != nil {
			c.TCP.Abort()
			if c.OnClose != nil {
				c.OnClose()
			}
			return
		}
		c.buf = c.buf[n:]
		switch f.Opcode {
		case OpClose:
			if c.OnClose != nil {
				c.OnClose()
			}
			c.TCP.Close()
			return
		case OpPing:
			pong := &Frame{Fin: true, Opcode: OpPong, Payload: f.Payload, Masked: c.client}
			_ = c.TCP.Send(pong.Marshal())
		case OpContinuation:
			if !c.inFrag {
				// Continuation without an open message: protocol error.
				c.TCP.Abort()
				if c.OnClose != nil {
					c.OnClose()
				}
				return
			}
			c.fragBuf = append(c.fragBuf, f.Payload...)
			if f.Fin {
				op, payload := c.fragOp, c.fragBuf
				c.inFrag, c.fragBuf = false, nil
				if c.OnMessage != nil {
					c.OnMessage(op, payload)
				}
			}
		default:
			if !f.Fin {
				// Start of a fragmented message.
				c.inFrag = true
				c.fragOp = f.Opcode
				c.fragBuf = append([]byte(nil), f.Payload...)
				continue
			}
			if c.OnMessage != nil {
				c.OnMessage(f.Opcode, f.Payload)
			}
		}
	}
}

// clientKey is the static nonce our simulated clients send; the value is
// arbitrary but must be valid base64 of 16 bytes.
const clientKey = "dGhlIHNhbXBsZSBub25jZQ=="

// Dial performs the client upgrade handshake on an *established* tcpsim
// connection and returns the WebSocket conn. OnOpen fires when the 101
// response arrives.
func Dial(tc *tcpsim.Conn, host, path string) (*Conn, error) {
	c := &Conn{TCP: tc, client: true}
	upgrade := tc.Tracer().Begin("ws-upgrade").Str("path", path)
	req := &httpsim.Request{
		Method: "GET",
		Target: path,
		Headers: httpsim.Headers{
			{Key: "Host", Value: host},
			{Key: "Upgrade", Value: "websocket"},
			{Key: "Connection", Value: "Upgrade"},
			{Key: "Sec-WebSocket-Key", Value: clientKey},
			{Key: "Sec-WebSocket-Version", Value: "13"},
		},
	}
	var hbuf []byte
	tc.OnData = func(b []byte) {
		if c.upgraded {
			c.onData(b)
			return
		}
		hbuf = append(hbuf, b...)
		resp, n, err := httpsim.ParseResponse(hbuf)
		if err == httpsim.ErrIncomplete {
			return
		}
		if err != nil || resp.Status != 101 || resp.Headers.Get("Sec-WebSocket-Accept") != AcceptKey(clientKey) {
			tc.Abort()
			if c.OnClose != nil {
				c.OnClose()
			}
			return
		}
		c.upgraded = true
		upgrade.Done()
		rest := hbuf[n:]
		hbuf = nil
		if c.OnOpen != nil {
			c.OnOpen()
		}
		if len(rest) > 0 {
			c.onData(rest)
		}
	}
	return c, tc.Send(req.Marshal())
}

// Serve installs a WebSocket acceptor on stack port. accept is invoked
// with each upgraded connection; the handler should set OnMessage.
func Serve(stack *tcpsim.Stack, port uint16, accept func(*Conn)) error {
	_, err := stack.Listen(port, func(tc *tcpsim.Conn) {
		var hbuf []byte
		tc.OnData = func(b []byte) {
			hbuf = append(hbuf, b...)
			req, n, err := httpsim.ParseRequest(hbuf)
			if err == httpsim.ErrIncomplete {
				return
			}
			if err != nil || req.Headers.Get("Sec-WebSocket-Key") == "" {
				tc.Send((&httpsim.Response{Status: 400}).Marshal())
				tc.Close()
				return
			}
			resp := &httpsim.Response{
				Status: 101,
				Headers: httpsim.Headers{
					{Key: "Upgrade", Value: "websocket"},
					{Key: "Connection", Value: "Upgrade"},
					{Key: "Sec-WebSocket-Accept", Value: AcceptKey(req.Headers.Get("Sec-WebSocket-Key"))},
				},
			}
			tc.Send(resp.Marshal())
			c := &Conn{TCP: tc, upgraded: true}
			tc.OnData = c.onData
			accept(c)
			if rest := hbuf[n:]; len(rest) > 0 {
				c.onData(rest)
			}
		}
	})
	return err
}
