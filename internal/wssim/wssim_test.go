package wssim

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"github.com/browsermetric/browsermetric/internal/eventsim"
	"github.com/browsermetric/browsermetric/internal/netsim"
	"github.com/browsermetric/browsermetric/internal/tcpsim"
)

func TestFrameRoundTripUnmasked(t *testing.T) {
	in := &Frame{Fin: true, Opcode: OpBinary, Payload: []byte("probe")}
	b := in.Marshal()
	out, n, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d", n, len(b))
	}
	if !out.Fin || out.Opcode != OpBinary || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("frame = %+v", out)
	}
}

func TestFrameRoundTripMasked(t *testing.T) {
	in := &Frame{Fin: true, Opcode: OpText, Masked: true, MaskKey: [4]byte{1, 2, 3, 4}, Payload: []byte("masked payload")}
	b := in.Marshal()
	// On the wire the payload must differ from the plaintext.
	if bytes.Contains(b, []byte("masked payload")) {
		t.Fatal("masked frame leaks plaintext")
	}
	out, _, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Payload) != "masked payload" {
		t.Fatalf("unmasked payload = %q", out.Payload)
	}
}

func TestFrameLength126(t *testing.T) {
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i)
	}
	in := &Frame{Fin: true, Opcode: OpBinary, Payload: payload}
	b := in.Marshal()
	if b[1]&0x7f != 126 {
		t.Fatalf("length marker = %d, want 126", b[1]&0x7f)
	}
	out, _, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Payload, payload) {
		t.Fatal("payload mismatch at 16-bit length")
	}
}

func TestFrameLength127(t *testing.T) {
	payload := make([]byte, 70_000)
	in := &Frame{Fin: true, Opcode: OpBinary, Payload: payload}
	b := in.Marshal()
	if b[1]&0x7f != 127 {
		t.Fatalf("length marker = %d, want 127", b[1]&0x7f)
	}
	out, _, err := ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Payload) != 70_000 {
		t.Fatalf("payload length = %d", len(out.Payload))
	}
}

func TestParseFrameIncomplete(t *testing.T) {
	full := (&Frame{Fin: true, Opcode: OpBinary, Payload: []byte("0123456789")}).Marshal()
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := ParseFrame(full[:cut]); !errors.Is(err, ErrIncomplete) {
			t.Fatalf("cut=%d: err = %v, want ErrIncomplete", cut, err)
		}
	}
}

func TestParseFrameRejectsRSV(t *testing.T) {
	b := (&Frame{Fin: true, Opcode: OpBinary}).Marshal()
	b[0] |= 0x40
	if _, _, err := ParseFrame(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestAcceptKeyRFCVector(t *testing.T) {
	// The worked example from RFC 6455 section 1.3.
	got := AcceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("AcceptKey = %q, want %q", got, want)
	}
}

// wsPair builds client/server stacks over a switch.
func wsPair(t testing.TB, sim *eventsim.Simulator, prop time.Duration) (*tcpsim.Stack, *tcpsim.Stack, netip.Addr) {
	t.Helper()
	macA := netsim.MAC{2, 0, 0, 0, 0, 1}
	macB := netsim.MAC{2, 0, 0, 0, 0, 2}
	ipA := netip.MustParseAddr("10.0.0.1")
	ipB := netip.MustParseAddr("10.0.0.2")
	nicA := netsim.NewNIC(sim, "a", macA, ipA)
	nicB := netsim.NewNIC(sim, "b", macB, ipB)
	sw := netsim.NewSwitch(sim, time.Microsecond)
	la := netsim.NewLink(sim, 100_000_000, prop)
	lb := netsim.NewLink(sim, 100_000_000, prop)
	nicA.Connect(la)
	sw.Connect(la)
	nicB.Connect(lb)
	sw.Connect(lb)
	table := map[netip.Addr]netsim.MAC{ipA: macA, ipB: macB}
	resolve := func(a netip.Addr) (netsim.MAC, bool) { m, ok := table[a]; return m, ok }
	sa, sb := tcpsim.NewStack(sim, nicA), tcpsim.NewStack(sim, nicB)
	sa.Resolve, sb.Resolve = resolve, resolve
	return sa, sb, ipB
}

func TestEndToEndEcho(t *testing.T) {
	sim := eventsim.New(1)
	client, server, serverIP := wsPair(t, sim, 50*time.Microsecond)

	if err := Serve(server, 8080, func(c *Conn) {
		c.OnMessage = func(op Opcode, p []byte) { c.Send(op, p) }
	}); err != nil {
		t.Fatal(err)
	}

	var echoed []byte
	opened := false
	tc, _ := client.Dial(serverIP, 8080)
	tc.OnEstablished = func() {
		ws, err := Dial(tc, "server", "/ws")
		if err != nil {
			t.Fatal(err)
		}
		ws.OnOpen = func() {
			opened = true
			ws.Send(OpBinary, []byte("ping-payload"))
		}
		ws.OnMessage = func(_ Opcode, p []byte) { echoed = p }
	}
	sim.RunUntil(10 * time.Second)

	if !opened {
		t.Fatal("handshake never completed")
	}
	if string(echoed) != "ping-payload" {
		t.Fatalf("echo = %q", echoed)
	}
}

func TestServerRejectsNonWebSocket(t *testing.T) {
	sim := eventsim.New(2)
	client, server, serverIP := wsPair(t, sim, 0)
	Serve(server, 8080, func(c *Conn) {})

	var raw []byte
	tc, _ := client.Dial(serverIP, 8080)
	tc.OnEstablished = func() {
		tc.OnData = func(b []byte) { raw = append(raw, b...) }
		tc.Send([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	}
	sim.RunUntil(10 * time.Second)
	if !bytes.Contains(raw, []byte("400")) {
		t.Fatalf("response = %q, want 400", raw)
	}
}

func TestPingGetsPong(t *testing.T) {
	sim := eventsim.New(3)
	client, server, serverIP := wsPair(t, sim, 0)
	var serverConn *Conn
	Serve(server, 8080, func(c *Conn) { serverConn = c })

	var pongs int
	tc, _ := client.Dial(serverIP, 8080)
	tc.OnEstablished = func() {
		ws, _ := Dial(tc, "s", "/")
		ws.OnOpen = func() {
			// Client sends a ping; the conn auto-pongs on the peer side.
			f := &Frame{Fin: true, Opcode: OpPing, Masked: true, Payload: []byte("hb")}
			tc.Send(f.Marshal())
		}
		ws.OnMessage = func(op Opcode, p []byte) {
			if op == OpPong && string(p) == "hb" {
				pongs++
			}
		}
	}
	sim.RunUntil(10 * time.Second)
	if pongs != 1 {
		t.Fatalf("pongs = %d, want 1", pongs)
	}
	_ = serverConn
}

func TestCloseHandshake(t *testing.T) {
	sim := eventsim.New(4)
	client, server, serverIP := wsPair(t, sim, 0)
	serverClosed := false
	Serve(server, 8080, func(c *Conn) {
		c.OnClose = func() { serverClosed = true }
	})
	tc, _ := client.Dial(serverIP, 8080)
	tc.OnEstablished = func() {
		ws, _ := Dial(tc, "s", "/")
		ws.OnOpen = func() { ws.Close() }
	}
	sim.RunUntil(10 * time.Second)
	if !serverClosed {
		t.Fatal("server OnClose never fired")
	}
}

func TestMultipleMessagesOneSegment(t *testing.T) {
	// Two frames delivered in a single TCP segment must both surface.
	sim := eventsim.New(5)
	client, server, serverIP := wsPair(t, sim, 0)
	var got []string
	Serve(server, 8080, func(c *Conn) {
		c.OnMessage = func(_ Opcode, p []byte) { got = append(got, string(p)) }
	})
	tc, _ := client.Dial(serverIP, 8080)
	tc.OnEstablished = func() {
		ws, _ := Dial(tc, "s", "/")
		ws.OnOpen = func() {
			f1 := (&Frame{Fin: true, Opcode: OpBinary, Masked: true, Payload: []byte("one")}).Marshal()
			f2 := (&Frame{Fin: true, Opcode: OpBinary, Masked: true, MaskKey: [4]byte{9, 9, 9, 9}, Payload: []byte("two")}).Marshal()
			tc.Send(append(f1, f2...))
		}
	}
	sim.RunUntil(10 * time.Second)
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("messages = %v", got)
	}
}

// Property: frames round-trip for arbitrary payloads and both masking modes.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(payload []byte, masked bool, key [4]byte) bool {
		in := &Frame{Fin: true, Opcode: OpBinary, Masked: masked, MaskKey: key, Payload: payload}
		b := in.Marshal()
		out, n, err := ParseFrame(b)
		if err != nil || n != len(b) {
			return false
		}
		return bytes.Equal(out.Payload, payload) && out.Masked == masked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: masking is an involution — the wire bytes differ from the
// payload (when non-trivial key and payload) yet decode restores it.
func TestQuickMaskingInvolution(t *testing.T) {
	f := func(payload []byte) bool {
		in := &Frame{Fin: true, Opcode: OpText, Masked: true, MaskKey: [4]byte{0xaa, 0xbb, 0xcc, 0xdd}, Payload: payload}
		out, _, err := ParseFrame(in.Marshal())
		return err == nil && bytes.Equal(out.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
