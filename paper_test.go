// paper_test.go is the executable form of EXPERIMENTS.md: one integration
// test per paper artifact, each asserting the qualitative shape the
// reproduction must exhibit. Reduced run counts keep the whole file under
// a second; cmd/appraise regenerates the full-size artifacts.
package browsermetric

import (
	"testing"
	"time"
)

const paperRuns = 20

func appraise(t *testing.T, m Method, b Browser, os OS, timing TimingFunc) *Experiment {
	t.Helper()
	exp, err := Appraise(m, b, os, Options{Timing: timing, Runs: paperRuns})
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

// TestPaper_Fig3_SocketVsHTTP asserts the headline Figure 3 ordering on
// every Table 2 combo: socket methods sit 1-2 orders of magnitude below
// HTTP methods, with DOM < XHR < Flash among the HTTP family.
func TestPaper_Fig3_SocketVsHTTP(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Label(), func(t *testing.T) {
			dom := appraise(t, MethodDOM, p.Browser, p.OS, NanoTime).MedianOverhead(2)
			xhr := appraise(t, MethodXHRGet, p.Browser, p.OS, NanoTime).MedianOverhead(2)
			flash := appraise(t, MethodFlashGet, p.Browser, p.OS, NanoTime).MedianOverhead(2)
			sock := appraise(t, MethodJavaTCP, p.Browser, p.OS, NanoTime).MedianOverhead(2)
			if !(dom <= xhr && xhr < flash) {
				t.Errorf("HTTP ordering broken: dom=%.2f xhr=%.2f flash=%.2f", dom, xhr, flash)
			}
			if p.Browser != Safari && sock >= dom {
				t.Errorf("socket %.3f should be below DOM %.2f", sock, dom)
			}
			if flash < 15 {
				t.Errorf("flash median %.1f ms below the paper's 20-100 band", flash)
			}
		})
	}
}

// TestPaper_Fig3_WebSocketMostStable asserts WebSocket's sub-ms, low-IQR
// behaviour — with the Opera (W) Δd1 exception the paper calls out.
func TestPaper_Fig3_WebSocketMostStable(t *testing.T) {
	for _, p := range Profiles() {
		if !p.WebSocket {
			continue
		}
		exp := appraise(t, MethodWebSocket, p.Browser, p.OS, NanoTime)
		b2 := exp.Box(2)
		if b2.Median > 1.5 {
			t.Errorf("%s: WS Δd2 median %.2f ms, want sub-ms scale", p.Label(), b2.Median)
		}
		b1 := exp.Box(1)
		if p.Browser == Opera && p.OS == Windows {
			if b1.Median < 1 {
				t.Errorf("Opera (W) Δd1 median %.2f should be the unstable exception", b1.Median)
			}
		} else if b1.Median > 2 {
			t.Errorf("%s: WS Δd1 median %.2f ms too high", p.Label(), b1.Median)
		}
	}
}

// TestPaper_Table3_HandshakeInflation asserts the Opera Flash mechanism:
// Δd1 ≈ handshake + overhead, GET reuses for Δd2, POST pays it again.
func TestPaper_Table3_HandshakeInflation(t *testing.T) {
	get := appraise(t, MethodFlashGet, Opera, Ubuntu, GetTime)
	post := appraise(t, MethodFlashPost, Opera, Ubuntu, GetTime)
	g1, g2 := get.MedianOverhead(1), get.MedianOverhead(2)
	p2 := post.MedianOverhead(2)
	if g1-g2 < 40 {
		t.Errorf("GET Δd1-Δd2 = %.1f ms, want ≈ 50 (the handshake)", g1-g2)
	}
	if d := p2 - 50 - g2; d < -12 || d > 12 {
		t.Errorf("POST Δd2 - 50 = %.1f should approximate GET Δd2 = %.1f", p2-50, g2)
	}
}

// TestPaper_Fig4_GranularityBimodality asserts the Windows getTime
// signature: bimodal Δd with negative values, absent on Ubuntu and absent
// under nanoTime.
func TestPaper_Fig4_GranularityBimodality(t *testing.T) {
	win, err := Appraise(MethodJavaTCP, Firefox, Windows, Options{Timing: GetTime, Runs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !win.Bimodal(1) && !win.Bimodal(2) {
		t.Error("Windows getTime Δd not bimodal")
	}
	neg := 0
	for _, v := range win.Overheads(1) {
		if v < -1 {
			neg++
		}
	}
	if neg == 0 {
		t.Error("no RTT under-estimation on Windows getTime")
	}

	ubu, err := Appraise(MethodJavaTCP, Firefox, Ubuntu, Options{Timing: GetTime, Runs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if ubu.Bimodal(1) || ubu.Bimodal(2) {
		t.Error("Ubuntu getTime should not be bimodal")
	}

	nano, err := Appraise(MethodJavaTCP, Firefox, Windows, Options{Timing: NanoTime, Runs: 50})
	if err != nil {
		t.Fatal(err)
	}
	if nano.Bimodal(1) || nano.Bimodal(2) {
		t.Error("nanoTime should remove the bimodality")
	}
	for _, v := range nano.Overheads(1) {
		if v < 0 {
			t.Fatalf("negative overhead %v with nanoTime", v)
		}
	}
}

// TestPaper_Table4_NanoTimeAccuracy asserts the socket method reaches
// capture-grade accuracy with the right timing function.
func TestPaper_Table4_NanoTimeAccuracy(t *testing.T) {
	exp := appraise(t, MethodJavaTCP, Chrome, Windows, NanoTime)
	mean, half := exp.MeanCI(1)
	if mean < 0 || mean > 0.3 {
		t.Errorf("socket Δd1 mean = %.3f ms, want ≈ 0.01 (tcpdump-grade)", mean)
	}
	if half > 0.1 {
		t.Errorf("socket Δd1 CI ±%.3f ms too wide", half)
	}
}

// TestPaper_Fig5_GranularityLevels asserts the probe sees exactly the two
// granularities with multi-minute dwell.
func TestPaper_Fig5_GranularityLevels(t *testing.T) {
	_, distinct := Fig5(12)
	if len(distinct) != 2 || distinct[0] != time.Millisecond {
		t.Fatalf("granularities = %v", distinct)
	}
	if distinct[1] < 15*time.Millisecond || distinct[1] > 16*time.Millisecond {
		t.Fatalf("coarse granularity = %v, want ~15.6ms", distinct[1])
	}
}

// TestPaper_Section5_Recommendations asserts the derived guidance matches
// the paper's: socket method best, WebSocket best native, Firefox on
// Windows / Chrome on Ubuntu, Flash HTTP uncalibratable.
func TestPaper_Section5_Recommendations(t *testing.T) {
	st, err := RunStudy(StudyOptions{Runs: 10, Gap: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rec := Recommend(st)
	if rec.BestMethod != MethodJavaTCP && rec.BestMethod != MethodWebSocket {
		t.Errorf("best method = %v, want a socket method", rec.BestMethod)
	}
	if rec.BestNative != MethodWebSocket {
		t.Errorf("best native = %v, want WebSocket", rec.BestNative)
	}
	if rec.BestBrowser["Windows"] != Firefox {
		t.Errorf("Windows browser = %v, want Firefox", rec.BestBrowser["Windows"])
	}
	if rec.BestBrowser["Ubuntu"] != Chrome {
		t.Errorf("Ubuntu browser = %v, want Chrome", rec.BestBrowser["Ubuntu"])
	}
	avoid := map[Method]bool{}
	for _, k := range rec.AvoidMethods {
		avoid[k] = true
	}
	if !avoid[MethodFlashGet] || !avoid[MethodFlashPost] {
		t.Errorf("avoid list %v must contain Flash GET/POST", rec.AvoidMethods)
	}
}
