package browsermetric

import (
	"testing"
	"time"

	"github.com/browsermetric/browsermetric/internal/arena"
	"github.com/browsermetric/browsermetric/internal/browser"
	"github.com/browsermetric/browsermetric/internal/methods"
	"github.com/browsermetric/browsermetric/internal/testbed"
)

// warmRunStep builds the steady-state measurement loop the arena tier
// optimizes: one testbed + one Runner serving repetition after
// repetition, exactly as core.RunContext drives them (BeginRun → Run →
// MatchRTT → Advance). After warm-up, every hot-path buffer — event
// queue entries, packet frames, TCP segment scratch, HTTP/WS parse
// buffers, the runner's result and callbacks — recycles through the
// arena or a persistent field.
func warmRunStep(t testing.TB, kind methods.Kind) func() {
	cfg := testbed.Config{Seed: 11}
	cfg.Arena = arena.New(0)
	tb := testbed.New(cfg)
	r := &methods.Runner{TB: tb, Profile: browser.Lookup(browser.Chrome, browser.Ubuntu), Timing: browser.NanoTime}
	return func() {
		tb.BeginRun()
		res, err := r.Run(kind)
		if err != nil {
			t.Fatal(err)
		}
		if pairs := tb.Cap.MatchRTT(res.ServerPort); len(pairs) < methods.Rounds {
			t.Fatalf("captured %d wire pairs, want >= %d", len(pairs), methods.Rounds)
		}
		tb.Advance(time.Second)
	}
}

// TestWarmRunSteadyStateAllocs is the "allocation war, phase 2" end
// state: once a cell is warm, a full two-round measurement run allocates
// (almost) nothing. The ceilings are measured values plus one object of
// slack — not round numbers — so any new per-run allocation fails the
// guard. WebSocket's ceiling is higher because the method's semantics
// open a fresh TCP connection and WebSocket upgrade every run (the
// connection objects and handshake parse results are per-run state, not
// recyclable buffers); the connection-reusing methods sit at zero or
// one.
func TestWarmRunSteadyStateAllocs(t *testing.T) {
	cases := []struct {
		kind    methods.Kind
		ceiling float64
	}{
		{methods.JavaTCP, 1},    // persistent echo socket: measured 0
		{methods.XHRGet, 2},     // container connection reuse: measured 1
		{methods.FlashGet, 2},   // container connection reuse: measured 1
		{methods.WebSocket, 44}, // fresh dial + upgrade per run: measured 36
	}
	for _, tc := range cases {
		step := warmRunStep(t, tc.kind)
		for i := 0; i < 5; i++ {
			step() // warm: grow slabs, freelists, parse buffers to steady state
		}
		if allocs := testing.AllocsPerRun(50, step); allocs > tc.ceiling {
			t.Errorf("%v: warm run allocated %.2f objects, ceiling %.0f", tc.kind, allocs, tc.ceiling)
		}
	}
}

// BenchmarkSteadyStateRun is the machine-readable form of the same
// contract: the warm-allocs/run metric lands in the BENCH_<pr>.json
// trajectory snapshot, and cmd/benchdiff fails when it regresses by more
// than the allocation gate's threshold. XHR GET is the representative
// workload (container reuse — the paper's most common method family).
func BenchmarkSteadyStateRun(b *testing.B) {
	step := warmRunStep(b, methods.XHRGet)
	for i := 0; i < 5; i++ {
		step()
	}
	warm := testing.AllocsPerRun(100, step)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.ReportMetric(warm, "warm-allocs/run")
}
